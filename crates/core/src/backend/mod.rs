//! The pluggable hardware-backend layer.
//!
//! The paper treats the hardware cost model as an interchangeable oracle
//! (§III-C): the co-design loop only ever asks "what does this candidate
//! cost?". This module makes that interchangeability real. A
//! [`HardwareBackend`] is a [`HardwareCostEvaluator`] that additionally
//!
//! 1. carries a stable **backend id** (`cim`, `systolic`, …) used as the
//!    registry key *and* as the namespace prefix of its cache
//!    fingerprint, and
//! 2. exposes its full configuration as an **opaque, serde-able JSON
//!    snapshot** ([`HardwareBackend::config_json`]), so run reports and
//!    fingerprints can capture every constant that shaped a result
//!    without the core crate knowing the backend's concrete types.
//!
//! Two backends ship in-tree, registered in [`BackendRegistry::standard`]:
//!
//! - [`cim::CimBackend`] — the NeuroSim-style compute-in-memory macro
//!   model the paper uses (the adapter is the **only** module in
//!   `lcda-core` allowed to name `lcda_neurosim` chip/mapper types);
//! - [`systolic::SystolicBackend`] — a from-scratch Eyeriss/TPU-style
//!   analytic digital accelerator model, the cross-architecture baseline.
//!
//! # Cache-fingerprint namespacing
//!
//! [`crate::pipeline::EvalCache`] keys its context on the evaluator
//! pair's fingerprints. Every backend fingerprint is
//! `"{id}/{digest-of-config}"`, so two backends can never collide even if
//! their config JSON happened to hash identically: a memoized result
//! produced under `cim` is structurally unservable to a `systolic` run.

use crate::evaluate::HardwareCostEvaluator;
use crate::fault::EvalFaultPlan;
use crate::space::DesignSpace;
use crate::{CoreError, Result};
use lcda_llm::middleware::SimClock;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

pub mod cim;
pub mod faulty;
pub mod systolic;

pub use cim::CimBackend;
pub use faulty::FaultyBackend;
pub use systolic::SystolicBackend;

/// The registry key of the backend used when none is requested — the
/// paper's compute-in-memory model.
pub const DEFAULT_BACKEND: &str = "cim";

/// The name of the fault-injection decorator accepted after `+` in a
/// backend name (`cim+faulty`, `systolic+faulty`).
pub const FAULTY_DECORATOR: &str = "faulty";

/// A hardware cost model that can be swapped under the co-design loop.
///
/// Everything the optimizer stack touches is the [`HardwareCostEvaluator`]
/// supertrait; the extra methods exist for the registry, checkpoints and
/// cache namespacing. `Box<dyn HardwareBackend>` upcasts directly to
/// `Box<dyn HardwareCostEvaluator>`.
pub trait HardwareBackend: HardwareCostEvaluator {
    /// Stable registry key (`cim`, `systolic`). Doubles as the namespace
    /// prefix of [`HardwareCostEvaluator::fingerprint`] and as the value
    /// stamped into [`crate::Checkpoint::backend`].
    fn id(&self) -> &'static str;

    /// The backend's full configuration as an opaque JSON snapshot —
    /// every constant that shapes its results, in a form the core crate
    /// does not need concrete types to carry around.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] when serialization fails.
    fn config_json(&self) -> Result<String>;
}

/// Builds the namespaced fingerprint every backend must use:
/// `"{id}/{fnv-digest(parts)}"`. The id prefix guarantees two backends
/// never share a fingerprint (and therefore never share cache entries),
/// even on digest collision.
pub fn backend_fingerprint(id: &str, parts: &[&str]) -> String {
    format!("{id}/{}", crate::pipeline::stable_fingerprint(parts))
}

/// Constructor signature stored in the registry: backends are built from
/// the design space alone, with their own defaults for everything else.
pub type BackendCtor = fn(&DesignSpace) -> Result<Box<dyn HardwareBackend>>;

/// A decorator that wraps a base backend, named after `+` in a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendDecorator {
    /// Fault injection: wraps the backend in a [`FaultyBackend`] firing
    /// the registry's fault plan.
    Faulty,
}

impl BackendDecorator {
    /// The decorator's grammar name (what follows the `+`).
    pub fn name(self) -> &'static str {
        match self {
            BackendDecorator::Faulty => FAULTY_DECORATOR,
        }
    }

    fn parse(token: &str) -> Option<Self> {
        (token == FAULTY_DECORATOR).then_some(BackendDecorator::Faulty)
    }
}

/// A grammar-level failure parsing a backend spec string.
///
/// These are the *typed* errors behind `BackendSpec::from_str`; callers
/// that want a [`CoreError`] get one via `From`. Registry membership of
/// the base name is a separate, registry-level check
/// ([`BackendRegistry::parse`]) — the grammar cannot know which backends
/// are registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendSpecError {
    /// The spec was empty or started with `+` (no base backend name).
    EmptyBase {
        /// The offending spec string.
        spec: String,
    },
    /// A `+` with nothing after it (`cim+`).
    EmptyDecorator {
        /// The offending spec string.
        spec: String,
    },
    /// A decorator token the grammar does not know.
    UnknownDecorator {
        /// The offending spec string.
        spec: String,
        /// The unrecognized token after `+`.
        decorator: String,
    },
}

impl fmt::Display for BackendSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpecError::EmptyBase { spec } => {
                write!(f, "backend spec `{spec}` has no base backend name")
            }
            BackendSpecError::EmptyDecorator { spec } => {
                write!(f, "backend spec `{spec}` has an empty `+` decorator")
            }
            BackendSpecError::UnknownDecorator { spec, decorator } => {
                write!(
                    f,
                    "unknown backend decorator `{decorator}` in `{spec}` (known: {FAULTY_DECORATOR})"
                )
            }
        }
    }
}

impl std::error::Error for BackendSpecError {}

impl From<BackendSpecError> for CoreError {
    fn from(err: BackendSpecError) -> Self {
        CoreError::InvalidConfig(err.to_string())
    }
}

/// A parsed, validated backend name: `base(+decorator)*`.
///
/// This replaces the ad-hoc string splitting the CLI used to do: a spec
/// parses exactly once — at the flag boundary, or at serve-job admission
/// — into a typed value, and everything downstream consumes the type.
/// Parsing validates the *grammar* (typed [`BackendSpecError`]s);
/// [`BackendRegistry::parse`] additionally validates that the base name
/// is registered.
///
/// ```
/// use lcda_core::backend::BackendSpec;
/// let spec: BackendSpec = "cim+faulty".parse().unwrap();
/// assert_eq!(spec.base(), "cim");
/// assert!(spec.is_faulty());
/// assert!("cim+bogus".parse::<BackendSpec>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    base: String,
    decorators: Vec<BackendDecorator>,
}

impl BackendSpec {
    /// A bare spec for a base backend, no decorators.
    pub fn bare(base: impl Into<String>) -> Self {
        BackendSpec {
            base: base.into(),
            decorators: Vec::new(),
        }
    }

    /// The base backend's registry name (`cim`, `systolic`, …).
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The decorators to apply, left to right.
    pub fn decorators(&self) -> &[BackendDecorator] {
        &self.decorators
    }

    /// Whether the spec carries the fault-injection decorator.
    pub fn is_faulty(&self) -> bool {
        self.decorators.contains(&BackendDecorator::Faulty)
    }
}

impl fmt::Display for BackendSpec {
    /// Renders the canonical spec string (`cim+faulty`), round-tripping
    /// through [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for deco in &self.decorators {
            write!(f, "+{}", deco.name())?;
        }
        Ok(())
    }
}

impl FromStr for BackendSpec {
    type Err = BackendSpecError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let mut parts = s.split('+');
        let base = parts.next().unwrap_or_default();
        if base.is_empty() {
            return Err(BackendSpecError::EmptyBase {
                spec: s.to_string(),
            });
        }
        let mut decorators = Vec::new();
        for token in parts {
            if token.is_empty() {
                return Err(BackendSpecError::EmptyDecorator {
                    spec: s.to_string(),
                });
            }
            match BackendDecorator::parse(token) {
                Some(deco) => decorators.push(deco),
                None => {
                    return Err(BackendSpecError::UnknownDecorator {
                        spec: s.to_string(),
                        decorator: token.to_string(),
                    })
                }
            }
        }
        Ok(BackendSpec {
            base: base.to_string(),
            decorators,
        })
    }
}

/// A small name → constructor table for hardware backends.
///
/// The CLI's `--backend` flag and [`crate::CoDesignBuilder::backend`]
/// resolve through one of these; downstream crates can
/// [`register`](BackendRegistry::register) their own models without
/// touching `lcda-core`.
///
/// # Decorators
///
/// A backend name may carry `+`-separated decorator suffixes, resolved
/// left to right after the base backend is built. The only in-tree
/// decorator is [`FAULTY_DECORATOR`]: `cim+faulty` wraps the CiM model
/// in a [`FaultyBackend`] firing the registry's
/// [fault plan](BackendRegistry::with_fault_plan) (empty by default, in
/// which case the wrapper is transparent).
#[derive(Debug, Clone, Default)]
pub struct BackendRegistry {
    ctors: BTreeMap<String, BackendCtor>,
    fault_plan: EvalFaultPlan,
    fault_clock: SimClock,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        BackendRegistry::default()
    }

    /// The in-tree backends: `cim` (NeuroSim-style CiM, the default) and
    /// `systolic` (digital systolic-array baseline).
    pub fn standard() -> Self {
        let mut r = BackendRegistry::empty();
        r.register("cim", |space| Ok(Box::new(CimBackend::new(space.clone()))));
        r.register("systolic", |space| {
            Ok(Box::new(SystolicBackend::new(space.clone())))
        });
        r
    }

    /// Registers (or replaces) a backend constructor under a name.
    pub fn register(&mut self, name: impl Into<String>, ctor: BackendCtor) {
        self.ctors.insert(name.into(), ctor);
    }

    /// Whether a backend name is registered (exact base names only; use
    /// [`BackendRegistry::resolves`] for decorated names).
    pub fn contains(&self, name: &str) -> bool {
        self.ctors.contains_key(name)
    }

    /// The registered backend names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.ctors.keys().map(String::as_str).collect()
    }

    /// Sets the fault plan fired by the [`FAULTY_DECORATOR`] wrapper.
    /// The plan is shared by every decorated backend this registry
    /// creates, so one schedule drives the whole scenario.
    pub fn with_fault_plan(mut self, plan: EvalFaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the simulated clock that [`FaultyBackend`] stalls advance.
    pub fn with_fault_clock(mut self, clock: SimClock) -> Self {
        self.fault_clock = clock;
        self
    }

    /// Parses and fully validates a backend spec string: the grammar
    /// (via [`BackendSpec::from_str`]) plus registry membership of the
    /// base name. This is the admission-time check the CLI and the serve
    /// job intake share — a spec that parses here is guaranteed to
    /// [`create`](BackendRegistry::create_spec) later (modulo backend
    /// construction failures).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] (carrying the typed
    /// [`BackendSpecError`] message for grammar faults, or the known-name
    /// listing for an unregistered base).
    pub fn parse(&self, name: &str) -> Result<BackendSpec> {
        let spec: BackendSpec = name.parse()?;
        if !self.contains(spec.base()) {
            return Err(CoreError::InvalidConfig(format!(
                "unknown hardware backend `{}` (known: {})",
                spec.base(),
                self.names().join(", ")
            )));
        }
        Ok(spec)
    }

    /// Whether `name` resolves through this registry: its base is
    /// registered and every `+`-suffix is a known decorator.
    pub fn resolves(&self, name: &str) -> bool {
        self.parse(name).is_ok()
    }

    /// Instantiates the named backend over a design space, applying any
    /// `+`-decorators left to right.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown base name or
    /// decorator and propagates backend construction errors.
    pub fn create(&self, name: &str, space: &DesignSpace) -> Result<Box<dyn HardwareBackend>> {
        let spec = self.parse(name)?;
        self.create_spec(&spec, space)
    }

    /// Instantiates an already-parsed [`BackendSpec`] over a design
    /// space, applying its decorators left to right.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the spec's base is not
    /// registered and propagates backend construction errors.
    pub fn create_spec(
        &self,
        spec: &BackendSpec,
        space: &DesignSpace,
    ) -> Result<Box<dyn HardwareBackend>> {
        let ctor = self.ctors.get(spec.base()).ok_or_else(|| {
            CoreError::InvalidConfig(format!(
                "unknown hardware backend `{}` (known: {})",
                spec.base(),
                self.names().join(", ")
            ))
        })?;
        let mut backend = ctor(space)?;
        for deco in spec.decorators() {
            match deco {
                BackendDecorator::Faulty => {
                    backend = Box::new(FaultyBackend::new(
                        backend,
                        self.fault_plan.clone(),
                        self.fault_clock.clone(),
                    ));
                }
            }
        }
        Ok(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_lists_both_backends() {
        let r = BackendRegistry::standard();
        assert_eq!(r.names(), vec!["cim", "systolic"]);
        assert!(r.contains(DEFAULT_BACKEND));
    }

    #[test]
    fn create_builds_the_named_backend() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let cim = r.create("cim", &space).unwrap();
        let sys = r.create("systolic", &space).unwrap();
        assert_eq!(cim.id(), "cim");
        assert_eq!(sys.id(), "systolic");
        assert!(cim.fingerprint().starts_with("cim/"));
        assert!(sys.fingerprint().starts_with("systolic/"));
    }

    #[test]
    fn unknown_backend_is_a_config_error_naming_the_options() {
        let r = BackendRegistry::standard();
        let err = r.create("fpga", &DesignSpace::nacim_cifar10()).unwrap_err();
        match err {
            CoreError::InvalidConfig(msg) => {
                assert!(msg.contains("fpga"));
                assert!(msg.contains("cim, systolic"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn fingerprints_are_namespaced_by_id() {
        // Same digest input, different ids → different fingerprints.
        let a = backend_fingerprint("cim", &["x"]);
        let b = backend_fingerprint("systolic", &["x"]);
        assert_ne!(a, b);
        assert_eq!(a.split('/').next(), Some("cim"));
    }

    #[test]
    fn custom_backend_registration() {
        let mut r = BackendRegistry::empty();
        assert!(r.names().is_empty());
        r.register("cim", |space| Ok(Box::new(CimBackend::new(space.clone()))));
        assert!(r.contains("cim"));
        assert!(!r.contains("systolic"));
    }

    #[test]
    fn decorated_names_resolve_and_wrap() {
        use crate::fault::EvalFault;
        let r = BackendRegistry::standard()
            .with_fault_plan(EvalFaultPlan::scripted([(0, EvalFault::Transient)]));
        let space = DesignSpace::nacim_cifar10();
        assert!(r.resolves("cim+faulty"));
        assert!(r.resolves("systolic+faulty"));
        assert!(r.resolves("cim"));
        assert!(!r.resolves("cim+bogus"));
        assert!(!r.resolves("fpga+faulty"));
        let mut wrapped = r.create("cim+faulty", &space).unwrap();
        assert_eq!(wrapped.id(), "faulty");
        assert!(wrapped.fingerprint().starts_with("faulty/"));
        let err = wrapped.cost(&space.reference_design()).unwrap_err();
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn backend_spec_parses_the_grammar_with_typed_errors() {
        let bare: BackendSpec = "cim".parse().unwrap();
        assert_eq!(bare.base(), "cim");
        assert!(!bare.is_faulty());
        assert!(bare.decorators().is_empty());
        assert_eq!(bare.to_string(), "cim");
        assert_eq!(bare, BackendSpec::bare("cim"));

        let deco: BackendSpec = "systolic+faulty".parse().unwrap();
        assert_eq!(deco.base(), "systolic");
        assert!(deco.is_faulty());
        assert_eq!(deco.decorators(), &[BackendDecorator::Faulty]);
        assert_eq!(deco.to_string(), "systolic+faulty");

        // Display round-trips through FromStr.
        assert_eq!(deco.to_string().parse::<BackendSpec>().unwrap(), deco);

        assert_eq!(
            "".parse::<BackendSpec>().unwrap_err(),
            BackendSpecError::EmptyBase {
                spec: String::new()
            }
        );
        assert_eq!(
            "+faulty".parse::<BackendSpec>().unwrap_err(),
            BackendSpecError::EmptyBase {
                spec: "+faulty".to_string()
            }
        );
        assert_eq!(
            "cim+".parse::<BackendSpec>().unwrap_err(),
            BackendSpecError::EmptyDecorator {
                spec: "cim+".to_string()
            }
        );
        let err = "cim+bogus".parse::<BackendSpec>().unwrap_err();
        assert_eq!(
            err,
            BackendSpecError::UnknownDecorator {
                spec: "cim+bogus".to_string(),
                decorator: "bogus".to_string(),
            }
        );
        // The CoreError conversion keeps the message.
        let core: CoreError = err.into();
        assert!(core.to_string().contains("bogus"));
        assert!(core.to_string().contains("faulty"));
    }

    #[test]
    fn registry_parse_validates_base_membership() {
        let r = BackendRegistry::standard();
        assert_eq!(r.parse("cim").unwrap(), BackendSpec::bare("cim"));
        assert!(r.parse("cim+faulty").unwrap().is_faulty());
        let err = r.parse("fpga+faulty").unwrap_err();
        assert!(err.to_string().contains("fpga"));
        assert!(err.to_string().contains("cim, systolic"));
        assert!(r.parse("cim+bogus").is_err());
        // create_spec builds a parsed spec directly.
        let space = DesignSpace::nacim_cifar10();
        let spec = r.parse("cim+faulty").unwrap();
        let backend = r.create_spec(&spec, &space).unwrap();
        assert_eq!(backend.id(), "faulty");
    }

    #[test]
    fn unknown_decorator_is_a_config_error() {
        let r = BackendRegistry::standard();
        let err = r
            .create("cim+bogus", &DesignSpace::nacim_cifar10())
            .unwrap_err();
        match err {
            CoreError::InvalidConfig(msg) => {
                assert!(msg.contains("bogus"));
                assert!(msg.contains("faulty"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_plan_decorator_is_transparent() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let design = space.reference_design();
        let mut plain = r.create("cim", &space).unwrap();
        let mut wrapped = r.create("cim+faulty", &space).unwrap();
        assert_eq!(plain.cost(&design).unwrap(), wrapped.cost(&design).unwrap());
    }

    #[test]
    fn backend_boxes_upcast_to_cost_evaluators() {
        use crate::evaluate::HardwareCostEvaluator;
        let space = DesignSpace::nacim_cifar10();
        let backend = BackendRegistry::standard().create("cim", &space).unwrap();
        let mut eval: Box<dyn HardwareCostEvaluator> = backend;
        assert!(eval.cost(&space.reference_design()).unwrap().is_some());
    }
}
