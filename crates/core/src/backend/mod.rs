//! The pluggable hardware-backend layer.
//!
//! The paper treats the hardware cost model as an interchangeable oracle
//! (§III-C): the co-design loop only ever asks "what does this candidate
//! cost?". This module makes that interchangeability real. A
//! [`HardwareBackend`] is a [`HardwareCostEvaluator`] that additionally
//!
//! 1. carries a stable **backend id** (`cim`, `systolic`, …) used as the
//!    registry key *and* as the namespace prefix of its cache
//!    fingerprint, and
//! 2. exposes its full configuration as an **opaque, serde-able JSON
//!    snapshot** ([`HardwareBackend::config_json`]), so run reports and
//!    fingerprints can capture every constant that shaped a result
//!    without the core crate knowing the backend's concrete types.
//!
//! Two backends ship in-tree, registered in [`BackendRegistry::standard`]:
//!
//! - [`cim::CimBackend`] — the NeuroSim-style compute-in-memory macro
//!   model the paper uses (the adapter is the **only** module in
//!   `lcda-core` allowed to name `lcda_neurosim` chip/mapper types);
//! - [`systolic::SystolicBackend`] — a from-scratch Eyeriss/TPU-style
//!   analytic digital accelerator model, the cross-architecture baseline.
//!
//! # Cache-fingerprint namespacing
//!
//! [`crate::pipeline::EvalCache`] keys its context on the evaluator
//! pair's fingerprints. Every backend fingerprint is
//! `"{id}/{digest-of-config}"`, so two backends can never collide even if
//! their config JSON happened to hash identically: a memoized result
//! produced under `cim` is structurally unservable to a `systolic` run.

use crate::evaluate::HardwareCostEvaluator;
use crate::space::DesignSpace;
use crate::{CoreError, Result};
use std::collections::BTreeMap;

pub mod cim;
pub mod systolic;

pub use cim::CimBackend;
pub use systolic::SystolicBackend;

/// The registry key of the backend used when none is requested — the
/// paper's compute-in-memory model.
pub const DEFAULT_BACKEND: &str = "cim";

/// A hardware cost model that can be swapped under the co-design loop.
///
/// Everything the optimizer stack touches is the [`HardwareCostEvaluator`]
/// supertrait; the extra methods exist for the registry, checkpoints and
/// cache namespacing. `Box<dyn HardwareBackend>` upcasts directly to
/// `Box<dyn HardwareCostEvaluator>`.
pub trait HardwareBackend: HardwareCostEvaluator {
    /// Stable registry key (`cim`, `systolic`). Doubles as the namespace
    /// prefix of [`HardwareCostEvaluator::fingerprint`] and as the value
    /// stamped into [`crate::Checkpoint::backend`].
    fn id(&self) -> &'static str;

    /// The backend's full configuration as an opaque JSON snapshot —
    /// every constant that shapes its results, in a form the core crate
    /// does not need concrete types to carry around.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] when serialization fails.
    fn config_json(&self) -> Result<String>;
}

/// Builds the namespaced fingerprint every backend must use:
/// `"{id}/{fnv-digest(parts)}"`. The id prefix guarantees two backends
/// never share a fingerprint (and therefore never share cache entries),
/// even on digest collision.
pub fn backend_fingerprint(id: &str, parts: &[&str]) -> String {
    format!("{id}/{}", crate::pipeline::stable_fingerprint(parts))
}

/// Constructor signature stored in the registry: backends are built from
/// the design space alone, with their own defaults for everything else.
pub type BackendCtor = fn(&DesignSpace) -> Result<Box<dyn HardwareBackend>>;

/// A small name → constructor table for hardware backends.
///
/// The CLI's `--backend` flag and [`crate::CoDesignBuilder::backend`]
/// resolve through one of these; downstream crates can
/// [`register`](BackendRegistry::register) their own models without
/// touching `lcda-core`.
#[derive(Debug, Clone, Default)]
pub struct BackendRegistry {
    ctors: BTreeMap<String, BackendCtor>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        BackendRegistry::default()
    }

    /// The in-tree backends: `cim` (NeuroSim-style CiM, the default) and
    /// `systolic` (digital systolic-array baseline).
    pub fn standard() -> Self {
        let mut r = BackendRegistry::empty();
        r.register("cim", |space| Ok(Box::new(CimBackend::new(space.clone()))));
        r.register("systolic", |space| {
            Ok(Box::new(SystolicBackend::new(space.clone())))
        });
        r
    }

    /// Registers (or replaces) a backend constructor under a name.
    pub fn register(&mut self, name: impl Into<String>, ctor: BackendCtor) {
        self.ctors.insert(name.into(), ctor);
    }

    /// Whether a backend name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.ctors.contains_key(name)
    }

    /// The registered backend names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.ctors.keys().map(String::as_str).collect()
    }

    /// Instantiates the named backend over a design space.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown name and
    /// propagates backend construction errors.
    pub fn create(&self, name: &str, space: &DesignSpace) -> Result<Box<dyn HardwareBackend>> {
        match self.ctors.get(name) {
            Some(ctor) => ctor(space),
            None => Err(CoreError::InvalidConfig(format!(
                "unknown hardware backend `{name}` (known: {})",
                self.names().join(", ")
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_lists_both_backends() {
        let r = BackendRegistry::standard();
        assert_eq!(r.names(), vec!["cim", "systolic"]);
        assert!(r.contains(DEFAULT_BACKEND));
    }

    #[test]
    fn create_builds_the_named_backend() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let cim = r.create("cim", &space).unwrap();
        let sys = r.create("systolic", &space).unwrap();
        assert_eq!(cim.id(), "cim");
        assert_eq!(sys.id(), "systolic");
        assert!(cim.fingerprint().starts_with("cim/"));
        assert!(sys.fingerprint().starts_with("systolic/"));
    }

    #[test]
    fn unknown_backend_is_a_config_error_naming_the_options() {
        let r = BackendRegistry::standard();
        let err = r.create("fpga", &DesignSpace::nacim_cifar10()).unwrap_err();
        match err {
            CoreError::InvalidConfig(msg) => {
                assert!(msg.contains("fpga"));
                assert!(msg.contains("cim, systolic"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn fingerprints_are_namespaced_by_id() {
        // Same digest input, different ids → different fingerprints.
        let a = backend_fingerprint("cim", &["x"]);
        let b = backend_fingerprint("systolic", &["x"]);
        assert_ne!(a, b);
        assert_eq!(a.split('/').next(), Some("cim"));
    }

    #[test]
    fn custom_backend_registration() {
        let mut r = BackendRegistry::empty();
        assert!(r.names().is_empty());
        r.register("cim", |space| Ok(Box::new(CimBackend::new(space.clone()))));
        assert!(r.contains("cim"));
        assert!(!r.contains("systolic"));
    }

    #[test]
    fn backend_boxes_upcast_to_cost_evaluators() {
        use crate::evaluate::HardwareCostEvaluator;
        let space = DesignSpace::nacim_cifar10();
        let backend = BackendRegistry::standard().create("cim", &space).unwrap();
        let mut eval: Box<dyn HardwareCostEvaluator> = backend;
        assert!(eval.cost(&space.reference_design()).unwrap().is_some());
    }
}
