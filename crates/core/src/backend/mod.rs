//! The pluggable hardware-backend layer.
//!
//! The paper treats the hardware cost model as an interchangeable oracle
//! (§III-C): the co-design loop only ever asks "what does this candidate
//! cost?". This module makes that interchangeability real. A
//! [`HardwareBackend`] is a [`HardwareCostEvaluator`] that additionally
//!
//! 1. carries a stable **backend id** (`cim`, `systolic`, …) used as the
//!    registry key *and* as the namespace prefix of its cache
//!    fingerprint, and
//! 2. exposes its full configuration as an **opaque, serde-able JSON
//!    snapshot** ([`HardwareBackend::config_json`]), so run reports and
//!    fingerprints can capture every constant that shaped a result
//!    without the core crate knowing the backend's concrete types.
//!
//! Two backends ship in-tree, registered in [`BackendRegistry::standard`]:
//!
//! - [`cim::CimBackend`] — the NeuroSim-style compute-in-memory macro
//!   model the paper uses (the adapter is the **only** module in
//!   `lcda-core` allowed to name `lcda_neurosim` chip/mapper types);
//! - [`systolic::SystolicBackend`] — a from-scratch Eyeriss/TPU-style
//!   analytic digital accelerator model, the cross-architecture baseline.
//!
//! # Cache-fingerprint namespacing
//!
//! [`crate::pipeline::EvalCache`] keys its context on the evaluator
//! pair's fingerprints. Every backend fingerprint is
//! `"{id}/{digest-of-config}"`, so two backends can never collide even if
//! their config JSON happened to hash identically: a memoized result
//! produced under `cim` is structurally unservable to a `systolic` run.

use crate::evaluate::HardwareCostEvaluator;
use crate::fault::EvalFaultPlan;
use crate::space::DesignSpace;
use crate::{CoreError, Result};
use lcda_llm::middleware::SimClock;
use std::collections::BTreeMap;

pub mod cim;
pub mod faulty;
pub mod systolic;

pub use cim::CimBackend;
pub use faulty::FaultyBackend;
pub use systolic::SystolicBackend;

/// The registry key of the backend used when none is requested — the
/// paper's compute-in-memory model.
pub const DEFAULT_BACKEND: &str = "cim";

/// The name of the fault-injection decorator accepted after `+` in a
/// backend name (`cim+faulty`, `systolic+faulty`).
pub const FAULTY_DECORATOR: &str = "faulty";

/// A hardware cost model that can be swapped under the co-design loop.
///
/// Everything the optimizer stack touches is the [`HardwareCostEvaluator`]
/// supertrait; the extra methods exist for the registry, checkpoints and
/// cache namespacing. `Box<dyn HardwareBackend>` upcasts directly to
/// `Box<dyn HardwareCostEvaluator>`.
pub trait HardwareBackend: HardwareCostEvaluator {
    /// Stable registry key (`cim`, `systolic`). Doubles as the namespace
    /// prefix of [`HardwareCostEvaluator::fingerprint`] and as the value
    /// stamped into [`crate::Checkpoint::backend`].
    fn id(&self) -> &'static str;

    /// The backend's full configuration as an opaque JSON snapshot —
    /// every constant that shapes its results, in a form the core crate
    /// does not need concrete types to carry around.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] when serialization fails.
    fn config_json(&self) -> Result<String>;
}

/// Builds the namespaced fingerprint every backend must use:
/// `"{id}/{fnv-digest(parts)}"`. The id prefix guarantees two backends
/// never share a fingerprint (and therefore never share cache entries),
/// even on digest collision.
pub fn backend_fingerprint(id: &str, parts: &[&str]) -> String {
    format!("{id}/{}", crate::pipeline::stable_fingerprint(parts))
}

/// Constructor signature stored in the registry: backends are built from
/// the design space alone, with their own defaults for everything else.
pub type BackendCtor = fn(&DesignSpace) -> Result<Box<dyn HardwareBackend>>;

/// A small name → constructor table for hardware backends.
///
/// The CLI's `--backend` flag and [`crate::CoDesignBuilder::backend`]
/// resolve through one of these; downstream crates can
/// [`register`](BackendRegistry::register) their own models without
/// touching `lcda-core`.
///
/// # Decorators
///
/// A backend name may carry `+`-separated decorator suffixes, resolved
/// left to right after the base backend is built. The only in-tree
/// decorator is [`FAULTY_DECORATOR`]: `cim+faulty` wraps the CiM model
/// in a [`FaultyBackend`] firing the registry's
/// [fault plan](BackendRegistry::with_fault_plan) (empty by default, in
/// which case the wrapper is transparent).
#[derive(Debug, Clone, Default)]
pub struct BackendRegistry {
    ctors: BTreeMap<String, BackendCtor>,
    fault_plan: EvalFaultPlan,
    fault_clock: SimClock,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        BackendRegistry::default()
    }

    /// The in-tree backends: `cim` (NeuroSim-style CiM, the default) and
    /// `systolic` (digital systolic-array baseline).
    pub fn standard() -> Self {
        let mut r = BackendRegistry::empty();
        r.register("cim", |space| Ok(Box::new(CimBackend::new(space.clone()))));
        r.register("systolic", |space| {
            Ok(Box::new(SystolicBackend::new(space.clone())))
        });
        r
    }

    /// Registers (or replaces) a backend constructor under a name.
    pub fn register(&mut self, name: impl Into<String>, ctor: BackendCtor) {
        self.ctors.insert(name.into(), ctor);
    }

    /// Whether a backend name is registered (exact base names only; use
    /// [`BackendRegistry::resolves`] for decorated names).
    pub fn contains(&self, name: &str) -> bool {
        self.ctors.contains_key(name)
    }

    /// The registered backend names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.ctors.keys().map(String::as_str).collect()
    }

    /// Sets the fault plan fired by the [`FAULTY_DECORATOR`] wrapper.
    /// The plan is shared by every decorated backend this registry
    /// creates, so one schedule drives the whole scenario.
    pub fn with_fault_plan(mut self, plan: EvalFaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the simulated clock that [`FaultyBackend`] stalls advance.
    pub fn with_fault_clock(mut self, clock: SimClock) -> Self {
        self.fault_clock = clock;
        self
    }

    /// Whether `name` resolves through this registry: its base is
    /// registered and every `+`-suffix is a known decorator.
    pub fn resolves(&self, name: &str) -> bool {
        let mut parts = name.split('+');
        let base = parts.next().unwrap_or("");
        self.contains(base) && parts.all(|deco| deco == FAULTY_DECORATOR)
    }

    /// Instantiates the named backend over a design space, applying any
    /// `+`-decorators left to right.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown base name or
    /// decorator and propagates backend construction errors.
    pub fn create(&self, name: &str, space: &DesignSpace) -> Result<Box<dyn HardwareBackend>> {
        let mut parts = name.split('+');
        let base = parts.next().unwrap_or("");
        let ctor = self.ctors.get(base).ok_or_else(|| {
            CoreError::InvalidConfig(format!(
                "unknown hardware backend `{base}` (known: {})",
                self.names().join(", ")
            ))
        })?;
        let mut backend = ctor(space)?;
        for deco in parts {
            if deco == FAULTY_DECORATOR {
                backend = Box::new(FaultyBackend::new(
                    backend,
                    self.fault_plan.clone(),
                    self.fault_clock.clone(),
                ));
            } else {
                return Err(CoreError::InvalidConfig(format!(
                    "unknown backend decorator `{deco}` in `{name}` (known: {FAULTY_DECORATOR})"
                )));
            }
        }
        Ok(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_lists_both_backends() {
        let r = BackendRegistry::standard();
        assert_eq!(r.names(), vec!["cim", "systolic"]);
        assert!(r.contains(DEFAULT_BACKEND));
    }

    #[test]
    fn create_builds_the_named_backend() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let cim = r.create("cim", &space).unwrap();
        let sys = r.create("systolic", &space).unwrap();
        assert_eq!(cim.id(), "cim");
        assert_eq!(sys.id(), "systolic");
        assert!(cim.fingerprint().starts_with("cim/"));
        assert!(sys.fingerprint().starts_with("systolic/"));
    }

    #[test]
    fn unknown_backend_is_a_config_error_naming_the_options() {
        let r = BackendRegistry::standard();
        let err = r.create("fpga", &DesignSpace::nacim_cifar10()).unwrap_err();
        match err {
            CoreError::InvalidConfig(msg) => {
                assert!(msg.contains("fpga"));
                assert!(msg.contains("cim, systolic"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn fingerprints_are_namespaced_by_id() {
        // Same digest input, different ids → different fingerprints.
        let a = backend_fingerprint("cim", &["x"]);
        let b = backend_fingerprint("systolic", &["x"]);
        assert_ne!(a, b);
        assert_eq!(a.split('/').next(), Some("cim"));
    }

    #[test]
    fn custom_backend_registration() {
        let mut r = BackendRegistry::empty();
        assert!(r.names().is_empty());
        r.register("cim", |space| Ok(Box::new(CimBackend::new(space.clone()))));
        assert!(r.contains("cim"));
        assert!(!r.contains("systolic"));
    }

    #[test]
    fn decorated_names_resolve_and_wrap() {
        use crate::fault::EvalFault;
        let r = BackendRegistry::standard()
            .with_fault_plan(EvalFaultPlan::scripted([(0, EvalFault::Transient)]));
        let space = DesignSpace::nacim_cifar10();
        assert!(r.resolves("cim+faulty"));
        assert!(r.resolves("systolic+faulty"));
        assert!(r.resolves("cim"));
        assert!(!r.resolves("cim+bogus"));
        assert!(!r.resolves("fpga+faulty"));
        let mut wrapped = r.create("cim+faulty", &space).unwrap();
        assert_eq!(wrapped.id(), "faulty");
        assert!(wrapped.fingerprint().starts_with("faulty/"));
        let err = wrapped.cost(&space.reference_design()).unwrap_err();
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn unknown_decorator_is_a_config_error() {
        let r = BackendRegistry::standard();
        let err = r
            .create("cim+bogus", &DesignSpace::nacim_cifar10())
            .unwrap_err();
        match err {
            CoreError::InvalidConfig(msg) => {
                assert!(msg.contains("bogus"));
                assert!(msg.contains("faulty"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_plan_decorator_is_transparent() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let design = space.reference_design();
        let mut plain = r.create("cim", &space).unwrap();
        let mut wrapped = r.create("cim+faulty", &space).unwrap();
        assert_eq!(plain.cost(&design).unwrap(), wrapped.cost(&design).unwrap());
    }

    #[test]
    fn backend_boxes_upcast_to_cost_evaluators() {
        use crate::evaluate::HardwareCostEvaluator;
        let space = DesignSpace::nacim_cifar10();
        let backend = BackendRegistry::standard().create("cim", &space).unwrap();
        let mut eval: Box<dyn HardwareCostEvaluator> = backend;
        assert!(eval.cost(&space.reference_design()).unwrap().is_some());
    }
}
