//! The pluggable hardware-backend layer.
//!
//! The paper treats the hardware cost model as an interchangeable oracle
//! (§III-C): the co-design loop only ever asks "what does this candidate
//! cost?". This module makes that interchangeability real. A
//! [`HardwareBackend`] is a [`HardwareCostEvaluator`] that additionally
//!
//! 1. carries a stable **backend id** (`cim`, `systolic`, …) used as the
//!    registry key *and* as the namespace prefix of its cache
//!    fingerprint, and
//! 2. exposes its full configuration as an **opaque, serde-able JSON
//!    snapshot** ([`HardwareBackend::config_json`]), so run reports and
//!    fingerprints can capture every constant that shaped a result
//!    without the core crate knowing the backend's concrete types.
//!
//! Two backends ship in-tree, registered in [`BackendRegistry::standard`]:
//!
//! - [`cim::CimBackend`] — the NeuroSim-style compute-in-memory macro
//!   model the paper uses (the adapter is the **only** module in
//!   `lcda-core` allowed to name `lcda_neurosim` chip/mapper types);
//! - [`systolic::SystolicBackend`] — a from-scratch Eyeriss/TPU-style
//!   analytic digital accelerator model, the cross-architecture baseline.
//!
//! # Cache-fingerprint namespacing
//!
//! [`crate::pipeline::EvalCache`] keys its context on the evaluator
//! pair's fingerprints. Every backend fingerprint is
//! `"{id}/{digest-of-config}"`, so two backends can never collide even if
//! their config JSON happened to hash identically: a memoized result
//! produced under `cim` is structurally unservable to a `systolic` run.

use crate::evaluate::HardwareCostEvaluator;
use crate::fault::EvalFaultPlan;
use crate::hwconfig::HwHierarchy;
use crate::space::DesignSpace;
use crate::{CoreError, Result};
use lcda_llm::middleware::SimClock;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

pub mod cim;
pub mod faulty;
pub mod systolic;

pub use cim::CimBackend;
pub use faulty::FaultyBackend;
pub use systolic::SystolicBackend;

/// The registry key of the backend used when none is requested — the
/// paper's compute-in-memory model.
pub const DEFAULT_BACKEND: &str = "cim";

/// The name of the fault-injection decorator accepted after `+` in a
/// backend name (`cim+faulty`, `systolic+faulty`).
pub const FAULTY_DECORATOR: &str = "faulty";

/// A hardware cost model that can be swapped under the co-design loop.
///
/// Everything the optimizer stack touches is the [`HardwareCostEvaluator`]
/// supertrait; the extra methods exist for the registry, checkpoints and
/// cache namespacing. `Box<dyn HardwareBackend>` upcasts directly to
/// `Box<dyn HardwareCostEvaluator>`.
pub trait HardwareBackend: HardwareCostEvaluator {
    /// Stable registry key (`cim`, `systolic`). Doubles as the namespace
    /// prefix of [`HardwareCostEvaluator::fingerprint`] and as the value
    /// stamped into [`crate::Checkpoint::backend`].
    fn id(&self) -> &'static str;

    /// The backend's full configuration as an opaque JSON snapshot —
    /// every constant that shapes its results, in a form the core crate
    /// does not need concrete types to carry around.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] when serialization fails.
    fn config_json(&self) -> Result<String>;

    /// The declarative hardware hierarchy this backend was built on, when
    /// it has one. Decorators delegate to the wrapped backend; backends
    /// registered by downstream crates may return `None`. The hierarchy's
    /// [`HwHierarchy::digest`] is what joins the checkpoint stamp and the
    /// journal `hw_config` event.
    fn hierarchy(&self) -> Option<&HwHierarchy> {
        None
    }
}

/// Builds the namespaced fingerprint every backend must use:
/// `"{id}/{fnv-digest(parts)}"`. The id prefix guarantees two backends
/// never share a fingerprint (and therefore never share cache entries),
/// even on digest collision.
pub fn backend_fingerprint(id: &str, parts: &[&str]) -> String {
    format!("{id}/{}", crate::pipeline::stable_fingerprint(parts))
}

/// Constructor signature stored in the registry: backends are built from
/// the design space plus an optional hardware hierarchy — `None` means
/// the backend's built-in default platform.
pub type BackendCtor = fn(&DesignSpace, Option<&HwHierarchy>) -> Result<Box<dyn HardwareBackend>>;

/// A decorator that wraps a base backend, named after `+` in a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendDecorator {
    /// Fault injection: wraps the backend in a [`FaultyBackend`] firing
    /// the registry's fault plan.
    Faulty,
}

impl BackendDecorator {
    /// The decorator's grammar name (what follows the `+`).
    pub fn name(self) -> &'static str {
        match self {
            BackendDecorator::Faulty => FAULTY_DECORATOR,
        }
    }

    fn parse(token: &str) -> Option<Self> {
        (token == FAULTY_DECORATOR).then_some(BackendDecorator::Faulty)
    }
}

/// A grammar-level failure parsing a backend spec string.
///
/// These are the *typed* errors behind `BackendSpec::from_str`; callers
/// that want a [`CoreError`] get one via `From`. Registry membership of
/// the base name is a separate, registry-level check
/// ([`BackendRegistry::parse`]) — the grammar cannot know which backends
/// are registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendSpecError {
    /// The spec was empty or started with `+` (no base backend name).
    EmptyBase {
        /// The offending spec string.
        spec: String,
    },
    /// A `+` with nothing after it (`cim+`).
    EmptyDecorator {
        /// The offending spec string.
        spec: String,
    },
    /// A decorator token the grammar does not know.
    UnknownDecorator {
        /// The offending spec string.
        spec: String,
        /// The unrecognized token after `+`.
        decorator: String,
    },
    /// An `@` with nothing after it (`cim@`).
    EmptyConfig {
        /// The offending spec string.
        spec: String,
    },
}

impl fmt::Display for BackendSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpecError::EmptyBase { spec } => {
                write!(f, "backend spec `{spec}` has no base backend name")
            }
            BackendSpecError::EmptyDecorator { spec } => {
                write!(f, "backend spec `{spec}` has an empty `+` decorator")
            }
            BackendSpecError::UnknownDecorator { spec, decorator } => {
                write!(
                    f,
                    "unknown backend decorator `{decorator}` in `{spec}` (known: {FAULTY_DECORATOR})"
                )
            }
            BackendSpecError::EmptyConfig { spec } => {
                write!(
                    f,
                    "backend spec `{spec}` has an empty `@` hardware config \
                     (expected a JSON file path or inline `{{…}}` blob)"
                )
            }
        }
    }
}

impl std::error::Error for BackendSpecError {}

impl From<BackendSpecError> for CoreError {
    fn from(err: BackendSpecError) -> Self {
        CoreError::InvalidConfig(err.to_string())
    }
}

/// A parsed, validated backend name: `base(+decorator)*(@config)?`.
///
/// This replaces the ad-hoc string splitting the CLI used to do: a spec
/// parses exactly once — at the flag boundary, or at serve-job admission
/// — into a typed value, and everything downstream consumes the type.
/// Parsing validates the *grammar* (typed [`BackendSpecError`]s);
/// [`BackendRegistry::parse`] additionally validates that the base name
/// is registered and that any `@config` hardware hierarchy loads and
/// validates.
///
/// The optional `@config` suffix names the hardware hierarchy the
/// backend should be built on: a JSON file path
/// (`cim@configs/hw/isaac.json`) or an inline JSON blob
/// (`cim@{"name":…}`). Everything after the first `@` is the config
/// source, verbatim — inline blobs may contain `+` or further `@`s.
///
/// ```
/// use lcda_core::backend::BackendSpec;
/// let spec: BackendSpec = "cim+faulty".parse().unwrap();
/// assert_eq!(spec.base(), "cim");
/// assert!(spec.is_faulty());
/// assert!("cim+bogus".parse::<BackendSpec>().is_err());
/// let cfg: BackendSpec = "cim@configs/hw/isaac.json".parse().unwrap();
/// assert_eq!(cfg.config(), Some("configs/hw/isaac.json"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    base: String,
    decorators: Vec<BackendDecorator>,
    config: Option<String>,
}

impl BackendSpec {
    /// A bare spec for a base backend, no decorators, default hardware.
    pub fn bare(base: impl Into<String>) -> Self {
        BackendSpec {
            base: base.into(),
            decorators: Vec::new(),
            config: None,
        }
    }

    /// The base backend's registry name (`cim`, `systolic`, …).
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The decorators to apply, left to right.
    pub fn decorators(&self) -> &[BackendDecorator] {
        &self.decorators
    }

    /// Whether the spec carries the fault-injection decorator.
    pub fn is_faulty(&self) -> bool {
        self.decorators.contains(&BackendDecorator::Faulty)
    }

    /// The raw `@config` hardware-config source (file path or inline
    /// JSON), when the spec carries one.
    pub fn config(&self) -> Option<&str> {
        self.config.as_deref()
    }

    /// The spec without its `@config` suffix — the canonical *identity*
    /// string stamped into checkpoints and journals. Two specs naming
    /// the same chip through different sources (a file vs. the same JSON
    /// inline) resolve to the same identity; the hierarchy *digest* is
    /// what distinguishes actual hardware differences.
    pub fn identity(&self) -> BackendSpec {
        BackendSpec {
            base: self.base.clone(),
            decorators: self.decorators.clone(),
            config: None,
        }
    }

    /// Resolves the `@config` source into a validated [`HwHierarchy`]
    /// (`None` when the spec names the backend's default platform).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] distinguishing an unreadable
    /// file from unparseable or invalid content, always naming the
    /// source.
    pub fn hardware(&self) -> Result<Option<HwHierarchy>> {
        match &self.config {
            None => Ok(None),
            Some(source) => HwHierarchy::from_source(source).map(Some),
        }
    }
}

impl fmt::Display for BackendSpec {
    /// Renders the canonical spec string (`cim+faulty@isaac.json`),
    /// round-tripping through [`FromStr`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for deco in &self.decorators {
            write!(f, "+{}", deco.name())?;
        }
        if let Some(config) = &self.config {
            write!(f, "@{config}")?;
        }
        Ok(())
    }
}

impl FromStr for BackendSpec {
    type Err = BackendSpecError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        // The config source is split off first so inline JSON blobs can
        // contain `+` (and further `@`s) without confusing the grammar.
        let (head, config) = match s.split_once('@') {
            Some((_, config)) if config.is_empty() => {
                return Err(BackendSpecError::EmptyConfig {
                    spec: s.to_string(),
                });
            }
            Some((head, config)) => (head, Some(config.to_string())),
            None => (s, None),
        };
        let mut parts = head.split('+');
        let base = parts.next().unwrap_or_default();
        if base.is_empty() {
            return Err(BackendSpecError::EmptyBase {
                spec: s.to_string(),
            });
        }
        let mut decorators = Vec::new();
        for token in parts {
            if token.is_empty() {
                return Err(BackendSpecError::EmptyDecorator {
                    spec: s.to_string(),
                });
            }
            match BackendDecorator::parse(token) {
                Some(deco) => decorators.push(deco),
                None => {
                    return Err(BackendSpecError::UnknownDecorator {
                        spec: s.to_string(),
                        decorator: token.to_string(),
                    })
                }
            }
        }
        Ok(BackendSpec {
            base: base.to_string(),
            decorators,
            config,
        })
    }
}

/// A small name → constructor table for hardware backends.
///
/// The CLI's `--backend` flag and [`crate::CoDesignBuilder::backend`]
/// resolve through one of these; downstream crates can
/// [`register`](BackendRegistry::register) their own models without
/// touching `lcda-core`.
///
/// # Decorators
///
/// A backend name may carry `+`-separated decorator suffixes, resolved
/// left to right after the base backend is built. The only in-tree
/// decorator is [`FAULTY_DECORATOR`]: `cim+faulty` wraps the CiM model
/// in a [`FaultyBackend`] firing the registry's
/// [fault plan](BackendRegistry::with_fault_plan) (empty by default, in
/// which case the wrapper is transparent).
#[derive(Debug, Clone, Default)]
pub struct BackendRegistry {
    ctors: BTreeMap<String, BackendCtor>,
    fault_plan: EvalFaultPlan,
    fault_clock: SimClock,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        BackendRegistry::default()
    }

    /// The in-tree backends: `cim` (NeuroSim-style CiM, the default) and
    /// `systolic` (digital systolic-array baseline). Each constructor
    /// accepts an optional [`HwHierarchy`]; `None` selects the built-in
    /// preset platform ([`HwHierarchy::isaac`] /
    /// [`HwHierarchy::systolic_256`]).
    pub fn standard() -> Self {
        let mut r = BackendRegistry::empty();
        r.register("cim", |space, hw| {
            Ok(match hw {
                Some(hw) => Box::new(CimBackend::from_hierarchy(space.clone(), hw.clone())?),
                None => Box::new(CimBackend::new(space.clone())),
            })
        });
        r.register("systolic", |space, hw| {
            Ok(match hw {
                Some(hw) => Box::new(SystolicBackend::from_hierarchy(space.clone(), hw.clone())?),
                None => Box::new(SystolicBackend::new(space.clone())),
            })
        });
        r
    }

    /// Registers (or replaces) a backend constructor under a name.
    pub fn register(&mut self, name: impl Into<String>, ctor: BackendCtor) {
        self.ctors.insert(name.into(), ctor);
    }

    /// Whether a backend name is registered (exact base names only; use
    /// [`BackendRegistry::resolves`] for decorated names).
    pub fn contains(&self, name: &str) -> bool {
        self.ctors.contains_key(name)
    }

    /// The registered backend names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.ctors.keys().map(String::as_str).collect()
    }

    /// Sets the fault plan fired by the [`FAULTY_DECORATOR`] wrapper.
    /// The plan is shared by every decorated backend this registry
    /// creates, so one schedule drives the whole scenario.
    pub fn with_fault_plan(mut self, plan: EvalFaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the simulated clock that [`FaultyBackend`] stalls advance.
    pub fn with_fault_clock(mut self, clock: SimClock) -> Self {
        self.fault_clock = clock;
        self
    }

    /// Parses and fully validates a backend spec string: the grammar
    /// (via [`BackendSpec::from_str`]), registry membership of the base
    /// name, and — when the spec carries an `@config` suffix — that the
    /// hardware hierarchy loads and validates. This is the
    /// admission-time check the CLI and the serve job intake share — a
    /// spec that parses here is guaranteed to
    /// [`create`](BackendRegistry::create_spec) later (modulo backend
    /// construction failures and the config source changing underneath).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`], distinguishing the failure
    /// classes: the typed [`BackendSpecError`] message for grammar
    /// faults, the known-name listing for an unregistered base, and the
    /// [`HwHierarchy`] load error (file-not-readable vs.
    /// unparseable/invalid content, naming the offending field path) for
    /// a bad `@config`.
    pub fn parse(&self, name: &str) -> Result<BackendSpec> {
        let spec: BackendSpec = name.parse()?;
        if !self.contains(spec.base()) {
            return Err(CoreError::InvalidConfig(format!(
                "unknown hardware backend `{}` (known: {})",
                spec.base(),
                self.names().join(", ")
            )));
        }
        // Validate the hardware config at admission time so a bad file
        // or blob is reported here — not as a queued-then-failed job.
        spec.hardware()?;
        Ok(spec)
    }

    /// Whether `name` resolves through this registry: its base is
    /// registered and every `+`-suffix is a known decorator.
    pub fn resolves(&self, name: &str) -> bool {
        self.parse(name).is_ok()
    }

    /// Instantiates the named backend over a design space, applying any
    /// `+`-decorators left to right.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown base name or
    /// decorator and propagates backend construction errors.
    pub fn create(&self, name: &str, space: &DesignSpace) -> Result<Box<dyn HardwareBackend>> {
        let spec = self.parse(name)?;
        self.create_spec(&spec, space)
    }

    /// Instantiates an already-parsed [`BackendSpec`] over a design
    /// space, resolving its `@config` hierarchy (if any) and applying
    /// its decorators left to right.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the spec's base is not
    /// registered or its hardware config does not resolve, and
    /// propagates backend construction errors.
    pub fn create_spec(
        &self,
        spec: &BackendSpec,
        space: &DesignSpace,
    ) -> Result<Box<dyn HardwareBackend>> {
        self.create_spec_with(spec, space, None)
    }

    /// Instantiates an already-parsed [`BackendSpec`] over a design
    /// space on an explicitly supplied hardware hierarchy (the channel
    /// `lcda serve` job specs and the CLI `--hw-config` flag use). A
    /// spec that *also* carries an `@config` suffix is rejected — two
    /// competing hardware sources would make the resolved chip
    /// ambiguous.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unregistered base, an
    /// ambiguous double hardware config, or an invalid hierarchy, and
    /// propagates backend construction errors.
    pub fn create_spec_with(
        &self,
        spec: &BackendSpec,
        space: &DesignSpace,
        hw: Option<&HwHierarchy>,
    ) -> Result<Box<dyn HardwareBackend>> {
        if hw.is_some() && spec.config().is_some() {
            return Err(CoreError::InvalidConfig(format!(
                "backend spec `{spec}` already names a hardware config; \
                 it cannot be combined with a separate hw config"
            )));
        }
        let ctor = self.ctors.get(spec.base()).ok_or_else(|| {
            CoreError::InvalidConfig(format!(
                "unknown hardware backend `{}` (known: {})",
                spec.base(),
                self.names().join(", ")
            ))
        })?;
        let spec_hw = spec.hardware()?;
        let mut backend = ctor(space, hw.or(spec_hw.as_ref()))?;
        for deco in spec.decorators() {
            match deco {
                BackendDecorator::Faulty => {
                    backend = Box::new(FaultyBackend::new(
                        backend,
                        self.fault_plan.clone(),
                        self.fault_clock.clone(),
                    ));
                }
            }
        }
        Ok(backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_lists_both_backends() {
        let r = BackendRegistry::standard();
        assert_eq!(r.names(), vec!["cim", "systolic"]);
        assert!(r.contains(DEFAULT_BACKEND));
    }

    #[test]
    fn create_builds_the_named_backend() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let cim = r.create("cim", &space).unwrap();
        let sys = r.create("systolic", &space).unwrap();
        assert_eq!(cim.id(), "cim");
        assert_eq!(sys.id(), "systolic");
        assert!(cim.fingerprint().starts_with("cim/"));
        assert!(sys.fingerprint().starts_with("systolic/"));
    }

    #[test]
    fn unknown_backend_is_a_config_error_naming_the_options() {
        let r = BackendRegistry::standard();
        let err = r.create("fpga", &DesignSpace::nacim_cifar10()).unwrap_err();
        match err {
            CoreError::InvalidConfig(msg) => {
                assert!(msg.contains("fpga"));
                assert!(msg.contains("cim, systolic"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn fingerprints_are_namespaced_by_id() {
        // Same digest input, different ids → different fingerprints.
        let a = backend_fingerprint("cim", &["x"]);
        let b = backend_fingerprint("systolic", &["x"]);
        assert_ne!(a, b);
        assert_eq!(a.split('/').next(), Some("cim"));
    }

    #[test]
    fn custom_backend_registration() {
        let mut r = BackendRegistry::empty();
        assert!(r.names().is_empty());
        r.register("cim", |space, _hw| {
            Ok(Box::new(CimBackend::new(space.clone())))
        });
        assert!(r.contains("cim"));
        assert!(!r.contains("systolic"));
    }

    #[test]
    fn decorated_names_resolve_and_wrap() {
        use crate::fault::EvalFault;
        let r = BackendRegistry::standard()
            .with_fault_plan(EvalFaultPlan::scripted([(0, EvalFault::Transient)]));
        let space = DesignSpace::nacim_cifar10();
        assert!(r.resolves("cim+faulty"));
        assert!(r.resolves("systolic+faulty"));
        assert!(r.resolves("cim"));
        assert!(!r.resolves("cim+bogus"));
        assert!(!r.resolves("fpga+faulty"));
        let mut wrapped = r.create("cim+faulty", &space).unwrap();
        assert_eq!(wrapped.id(), "faulty");
        assert!(wrapped.fingerprint().starts_with("faulty/"));
        let err = wrapped.cost(&space.reference_design()).unwrap_err();
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn backend_spec_parses_the_grammar_with_typed_errors() {
        let bare: BackendSpec = "cim".parse().unwrap();
        assert_eq!(bare.base(), "cim");
        assert!(!bare.is_faulty());
        assert!(bare.decorators().is_empty());
        assert_eq!(bare.to_string(), "cim");
        assert_eq!(bare, BackendSpec::bare("cim"));

        let deco: BackendSpec = "systolic+faulty".parse().unwrap();
        assert_eq!(deco.base(), "systolic");
        assert!(deco.is_faulty());
        assert_eq!(deco.decorators(), &[BackendDecorator::Faulty]);
        assert_eq!(deco.to_string(), "systolic+faulty");

        // Display round-trips through FromStr.
        assert_eq!(deco.to_string().parse::<BackendSpec>().unwrap(), deco);

        assert_eq!(
            "".parse::<BackendSpec>().unwrap_err(),
            BackendSpecError::EmptyBase {
                spec: String::new()
            }
        );
        assert_eq!(
            "+faulty".parse::<BackendSpec>().unwrap_err(),
            BackendSpecError::EmptyBase {
                spec: "+faulty".to_string()
            }
        );
        assert_eq!(
            "cim+".parse::<BackendSpec>().unwrap_err(),
            BackendSpecError::EmptyDecorator {
                spec: "cim+".to_string()
            }
        );
        let err = "cim+bogus".parse::<BackendSpec>().unwrap_err();
        assert_eq!(
            err,
            BackendSpecError::UnknownDecorator {
                spec: "cim+bogus".to_string(),
                decorator: "bogus".to_string(),
            }
        );
        // The CoreError conversion keeps the message.
        let core: CoreError = err.into();
        assert!(core.to_string().contains("bogus"));
        assert!(core.to_string().contains("faulty"));
    }

    #[test]
    fn config_suffix_parses_and_round_trips() {
        let spec: BackendSpec = "cim@configs/hw/isaac.json".parse().unwrap();
        assert_eq!(spec.base(), "cim");
        assert_eq!(spec.config(), Some("configs/hw/isaac.json"));
        assert_eq!(spec.to_string(), "cim@configs/hw/isaac.json");
        assert_eq!(spec.to_string().parse::<BackendSpec>().unwrap(), spec);
        assert_eq!(spec.identity(), BackendSpec::bare("cim"));

        // Decorators compose before the config suffix…
        let deco: BackendSpec = "cim+faulty@chip.json".parse().unwrap();
        assert!(deco.is_faulty());
        assert_eq!(deco.config(), Some("chip.json"));

        // …and inline JSON blobs keep `+`/`@` characters verbatim.
        let inline: BackendSpec = "cim@{\"a+b\":\"c@d\"}".parse().unwrap();
        assert_eq!(inline.config(), Some("{\"a+b\":\"c@d\"}"));

        assert_eq!(
            "cim@".parse::<BackendSpec>().unwrap_err(),
            BackendSpecError::EmptyConfig {
                spec: "cim@".to_string()
            }
        );
    }

    #[test]
    fn registry_parse_distinguishes_the_config_failure_classes() {
        let r = BackendRegistry::standard();
        // Unknown backend, even with a plausible config.
        let err = r.parse("fpga@chip.json").unwrap_err().to_string();
        assert!(err.contains("unknown hardware backend"), "{err}");
        // Known backend, unreadable file.
        let err = r
            .parse("cim@/nonexistent/chip.json")
            .unwrap_err()
            .to_string();
        assert!(err.contains("not readable"), "{err}");
        assert!(!err.contains("unknown hardware backend"), "{err}");
        // Known backend, invalid inline content names the field path.
        let mut bad: serde_json::Value =
            serde_json::from_str(&crate::hwconfig::HwHierarchy::isaac().canonical_json()).unwrap();
        bad["crossbar"]["rows"] = serde_json::json!(0);
        let err = r.parse(&format!("cim@{bad}")).unwrap_err().to_string();
        assert!(err.contains("crossbar.rows"), "{err}");
    }

    #[test]
    fn inline_config_builds_a_configured_backend() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let mut hw = crate::hwconfig::HwHierarchy::isaac();
        hw.chip.global_buffer_kb = 128;
        let spec = r.parse(&format!("cim@{}", hw.canonical_json())).unwrap();
        let configured = r.create_spec(&spec, &space).unwrap();
        let default = r.create("cim", &space).unwrap();
        assert_eq!(configured.hierarchy(), Some(&hw));
        assert_ne!(configured.fingerprint(), default.fingerprint());
        // The identical hierarchy inline reproduces the default exactly.
        let same = r
            .create(
                &format!(
                    "cim@{}",
                    crate::hwconfig::HwHierarchy::isaac().canonical_json()
                ),
                &space,
            )
            .unwrap();
        assert_eq!(same.fingerprint(), default.fingerprint());
    }

    #[test]
    fn explicit_hw_conflicts_with_a_config_suffix() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let hw = crate::hwconfig::HwHierarchy::isaac();
        let spec = r.parse(&format!("cim@{}", hw.canonical_json())).unwrap();
        let err = r
            .create_spec_with(&spec, &space, Some(&hw))
            .unwrap_err()
            .to_string();
        assert!(err.contains("cannot be combined"), "{err}");
        // Without the suffix the explicit hierarchy is accepted.
        let spec = r.parse("cim").unwrap();
        let backend = r.create_spec_with(&spec, &space, Some(&hw)).unwrap();
        assert_eq!(backend.hierarchy(), Some(&hw));
    }

    #[test]
    fn registry_parse_validates_base_membership() {
        let r = BackendRegistry::standard();
        assert_eq!(r.parse("cim").unwrap(), BackendSpec::bare("cim"));
        assert!(r.parse("cim+faulty").unwrap().is_faulty());
        let err = r.parse("fpga+faulty").unwrap_err();
        assert!(err.to_string().contains("fpga"));
        assert!(err.to_string().contains("cim, systolic"));
        assert!(r.parse("cim+bogus").is_err());
        // create_spec builds a parsed spec directly.
        let space = DesignSpace::nacim_cifar10();
        let spec = r.parse("cim+faulty").unwrap();
        let backend = r.create_spec(&spec, &space).unwrap();
        assert_eq!(backend.id(), "faulty");
    }

    #[test]
    fn unknown_decorator_is_a_config_error() {
        let r = BackendRegistry::standard();
        let err = r
            .create("cim+bogus", &DesignSpace::nacim_cifar10())
            .unwrap_err();
        match err {
            CoreError::InvalidConfig(msg) => {
                assert!(msg.contains("bogus"));
                assert!(msg.contains("faulty"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn empty_plan_decorator_is_transparent() {
        let r = BackendRegistry::standard();
        let space = DesignSpace::nacim_cifar10();
        let design = space.reference_design();
        let mut plain = r.create("cim", &space).unwrap();
        let mut wrapped = r.create("cim+faulty", &space).unwrap();
        assert_eq!(plain.cost(&design).unwrap(), wrapped.cost(&design).unwrap());
    }

    #[test]
    fn backend_boxes_upcast_to_cost_evaluators() {
        use crate::evaluate::HardwareCostEvaluator;
        let space = DesignSpace::nacim_cifar10();
        let backend = BackendRegistry::standard().create("cim", &space).unwrap();
        let mut eval: Box<dyn HardwareCostEvaluator> = backend;
        assert!(eval.cost(&space.reference_design()).unwrap().is_some());
    }
}
