//! # lcda-core
//!
//! The LCDA framework (Yan et al., SOCC 2023): LLM-driven software/
//! hardware co-design of compute-in-memory DNN accelerators.
//!
//! Like every co-design framework the paper surveys, LCDA has four
//! components (§III):
//!
//! 1. **design optimizer** — any [`lcda_optim::Optimizer`]; the paper's
//!    contribution plugs an LLM in via `lcda_optim::llm_opt::LlmOptimizer`,
//! 2. **design generator** — [`space::DesignSpace`], turning a parsed
//!    candidate into a trainable [`lcda_dnn::arch::Architecture`]; each
//!    hardware backend owns its own lowering from there,
//! 3. **DNN performance evaluator** — [`evaluate::AccuracyEvaluator`]
//!    implementations: the fast calibrated [`surrogate::SurrogateEvaluator`]
//!    and the real [`trained::TrainedEvaluator`] (noise-injection training
//!    plus Monte-Carlo evaluation, §III-C),
//! 4. **hardware cost evaluator** — a pluggable
//!    [`backend::HardwareBackend`]: the NeuroSim-style
//!    [`backend::CimBackend`] macro model of §III-D (the default) or the
//!    digital [`backend::SystolicBackend`] baseline, resolved by name
//!    through [`backend::BackendRegistry`].
//!
//! [`codesign::CoDesign`] wires them into the Algorithm-2 episode loop;
//! [`reward`] provides Eq. 1 and Eq. 2; [`pareto`] and [`analysis`]
//! post-process the exploration history into the paper's figures and the
//! 25× speedup headline.
//!
//! # Example
//!
//! ```
//! use lcda_core::{CoDesign, CoDesignConfig, Objective};
//! use lcda_core::space::DesignSpace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use lcda_core::codesign::OptimizerSpec;
//!
//! let space = DesignSpace::nacim_cifar10();
//! let config = CoDesignConfig::builder(Objective::AccuracyEnergy)
//!     .episodes(4)
//!     .seed(7)
//!     .build();
//! let mut run = CoDesign::builder(space, config)
//!     .optimizer(OptimizerSpec::ExpertLlm)
//!     .build()?;
//! let outcome = run.run()?;
//! assert_eq!(outcome.history.len(), 4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
// A panic inside the episode loop is a crashed search, so fallible code
// must surface typed `CoreError`s instead of unwrapping. Tests are
// exempt (an unwrap there *is* the assertion); the single sanctioned
// production `expect` carries its own `#[allow]` with a justification.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod error;

pub mod analysis;
pub mod backend;
pub mod cache;
pub mod checkpoint;
pub mod codesign;
pub mod evaluate;
pub mod fault;
pub mod hwconfig;
pub mod journal;
pub mod mo;
pub mod pareto;
pub mod pipeline;
pub mod reward;
pub mod serve;
pub mod shard;
pub mod space;
pub mod surrogate;
pub mod trained;
pub mod wal;

pub use backend::{
    BackendDecorator, BackendRegistry, BackendSpec, BackendSpecError, CimBackend, FaultyBackend,
    HardwareBackend, SystolicBackend, DEFAULT_BACKEND, FAULTY_DECORATOR,
};
pub use cache::{CacheSession, CacheStore, SessionStats, StoreStats};
pub use checkpoint::{Checkpoint, CheckpointStore};
pub use codesign::{
    CoDesign, CoDesignBuilder, CoDesignConfig, CoDesignConfigBuilder, EpisodeRecord, OptimizerSpec,
    Outcome,
};
pub use error::CoreError;
pub use fault::{EvalFault, EvalFaultPlan, ShardFault, ShardFaultPlan};
pub use hwconfig::{
    ChipTier, CoreTier, CrossbarTier, Dataflow, DeviceTier, DigitalCosts, HwHierarchy, NocKind,
    NocSpec,
};
pub use journal::{Journal, JournalEvent, JournalRecord, RunReport};
pub use pipeline::{CacheStats, EvalCache, EvalPipeline, EvalRetryPolicy};
pub use reward::Objective;
pub use serve::{JobId, JobServer, JobSpec, JobState, JobStatus, ServeConfig, ServerStats};
pub use shard::{FrontPoint, ShardManifest, ShardOutcome, ShardPlan, ShardSummary, Supervisor};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
