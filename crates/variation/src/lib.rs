//! # lcda-variation
//!
//! Non-ideality models for NVM devices in compute-in-memory accelerators,
//! plus the Monte-Carlo machinery used to evaluate DNN accuracy under those
//! non-idealities (§II-B and §III-C of the LCDA paper).
//!
//! The paper considers the non-idealities to be uncorrelated amongst
//! devices, and distinguishes:
//!
//! - **temporal variation** — random conductance fluctuations when a device
//!   is programmed; generally device-independent but possibly influenced by
//!   the programmed value (Feinberg et al., HPCA'18),
//! - **spatial variation** — manufacturing defects at local (per-device)
//!   and global (per-chip) scales,
//! - **stuck-at faults** — devices pinned at their minimum or maximum
//!   conductance,
//! - **quantization** — the finite number of programmable conductance
//!   levels per cell.
//!
//! All of these operate in the *conductance* domain; [`weights`] provides
//! the differential weight-to-conductance mapping so whole DNN weight
//! tensors can be perturbed the way a real crossbar programming pass would
//! perturb them.
//!
//! # Example
//!
//! ```
//! use lcda_variation::{VariationConfig, weights::WeightPerturber};
//!
//! let config = VariationConfig::rram_moderate();
//! let perturber = WeightPerturber::new(config, 1.0);
//! let mut w = vec![0.5f32, -0.25, 0.0, 1.0];
//! perturber.perturb(&mut w, 7);
//! assert!(w.iter().all(|x| x.is_finite()));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod config;
mod error;
mod rng;

pub mod montecarlo;
pub mod sources;
pub mod weights;

pub use config::{RetentionConfig, ValueDependence, VariationConfig, WriteVerifyConfig};
pub use error::VariationError;
pub use rng::VarRng;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, VariationError>;
