//! Composite variation configuration with per-technology presets.

use crate::{Result, VariationError};
use serde::{Deserialize, Serialize};

/// How the temporal programming-variation magnitude depends on the
/// programmed conductance (Feinberg et al., HPCA'18 observe that temporal
/// variation "may be influenced by the programmed value").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ValueDependence {
    /// σ is a constant fraction of the full conductance range.
    #[default]
    Constant,
    /// σ grows linearly with the programmed level: devices programmed near
    /// `g_max` fluctuate more.
    Linear,
    /// σ is largest mid-range (programming into intermediate states is the
    /// least precise), following a parabolic profile.
    MidrangePeak,
}

impl ValueDependence {
    /// Multiplier on the base sigma for a normalized conductance
    /// `g ∈ [0, 1]`.
    pub fn scale(self, g_norm: f32) -> f32 {
        let g = g_norm.clamp(0.0, 1.0);
        match self {
            ValueDependence::Constant => 1.0,
            ValueDependence::Linear => 0.5 + g,
            ValueDependence::MidrangePeak => 0.5 + 2.0 * g * (1.0 - g),
        }
    }
}

/// Write-verify programming (SWIM, Yan et al. DAC'22): after each
/// programming pulse the device is read back, and reprogrammed while the
/// error exceeds the tolerance, up to an iteration budget. Trades write
/// energy/time for tighter conductances; spatial variation and stuck-at
/// faults are *not* correctable (the verify loop observes but cannot fix
/// them), and chip-level drift happens after programming.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WriteVerifyConfig {
    /// Maximum programming attempts per device (≥ 1).
    pub max_iterations: u32,
    /// Accepted |readback − target| in normalized conductance units.
    pub tolerance: f32,
}

impl WriteVerifyConfig {
    /// The SWIM-flavoured default: up to 10 pulses, 1% tolerance.
    pub fn standard() -> Self {
        WriteVerifyConfig {
            max_iterations: 10,
            tolerance: 0.01,
        }
    }
}

/// Conductance retention loss: programmed conductances relax toward the
/// low state over time following the power law commonly reported for
/// RRAM/PCM, `g(t) = g · ((t + t₀) / t₀)^(−ν)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionConfig {
    /// Drift exponent ν (0 = no drift; PCM ≈ 0.05–0.1, RRAM smaller).
    pub nu: f32,
    /// Reference time t₀ in seconds (the programming-to-first-read gap).
    pub t0_seconds: f64,
}

impl RetentionConfig {
    /// A PCM-like drift corner.
    pub fn pcm_like() -> Self {
        RetentionConfig {
            nu: 0.05,
            t0_seconds: 1.0,
        }
    }

    /// A milder RRAM-like drift corner.
    pub fn rram_like() -> Self {
        RetentionConfig {
            nu: 0.01,
            t0_seconds: 1.0,
        }
    }

    /// The multiplicative conductance factor after `elapsed_seconds`.
    pub fn factor(&self, elapsed_seconds: f64) -> f32 {
        if self.nu == 0.0 || elapsed_seconds <= 0.0 {
            return 1.0;
        }
        (((elapsed_seconds + self.t0_seconds) / self.t0_seconds) as f32).powf(-self.nu)
    }
}

/// Full non-ideality description of an NVM technology, in normalized
/// conductance units (the usable conductance window is `[0, 1]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    /// Base σ of temporal (programming) variation as a fraction of the
    /// conductance window.
    pub temporal_sigma: f32,
    /// Shape of the value dependence of temporal variation.
    pub value_dependence: ValueDependence,
    /// σ of per-device (local) spatial variation.
    pub spatial_local_sigma: f32,
    /// σ of the chip-wide (global) multiplicative spatial variation.
    pub spatial_global_sigma: f32,
    /// Probability that a device is stuck at `g_min` (reads as 0).
    pub stuck_at_off_rate: f64,
    /// Probability that a device is stuck at `g_max` (reads as 1).
    pub stuck_at_on_rate: f64,
    /// Number of programmable conductance levels per cell (`0` = analog,
    /// no quantization).
    pub levels: u32,
    /// Optional write-verify programming loop.
    pub write_verify: Option<WriteVerifyConfig>,
    /// Optional retention drift (time-dependent; applied at read time).
    pub retention: Option<RetentionConfig>,
}

impl VariationConfig {
    /// A fully ideal device: no variation at all.
    pub fn ideal() -> Self {
        VariationConfig {
            temporal_sigma: 0.0,
            value_dependence: ValueDependence::Constant,
            spatial_local_sigma: 0.0,
            spatial_global_sigma: 0.0,
            stuck_at_off_rate: 0.0,
            stuck_at_on_rate: 0.0,
            levels: 0,
            write_verify: None,
            retention: None,
        }
    }

    /// Moderate RRAM corner — the default device of NACIM's evaluation.
    pub fn rram_moderate() -> Self {
        VariationConfig {
            temporal_sigma: 0.05,
            value_dependence: ValueDependence::Linear,
            spatial_local_sigma: 0.03,
            spatial_global_sigma: 0.02,
            stuck_at_off_rate: 1e-3,
            stuck_at_on_rate: 5e-4,
            levels: 16,
            write_verify: None,
            retention: None,
        }
    }

    /// Aggressive RRAM corner used in robustness stress tests.
    pub fn rram_severe() -> Self {
        VariationConfig {
            temporal_sigma: 0.12,
            value_dependence: ValueDependence::Linear,
            spatial_local_sigma: 0.08,
            spatial_global_sigma: 0.05,
            stuck_at_off_rate: 5e-3,
            stuck_at_on_rate: 2e-3,
            levels: 16,
            write_verify: None,
            retention: None,
        }
    }

    /// FeFET corner: tighter programming, slightly more stuck-at faults.
    pub fn fefet_moderate() -> Self {
        VariationConfig {
            temporal_sigma: 0.035,
            value_dependence: ValueDependence::MidrangePeak,
            spatial_local_sigma: 0.025,
            spatial_global_sigma: 0.015,
            stuck_at_off_rate: 2e-3,
            stuck_at_on_rate: 1e-3,
            levels: 32,
            write_verify: None,
            retention: None,
        }
    }

    /// Validates that every field is in range.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidConfig`] for negative sigmas or
    /// probabilities outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("temporal_sigma", self.temporal_sigma),
            ("spatial_local_sigma", self.spatial_local_sigma),
            ("spatial_global_sigma", self.spatial_global_sigma),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(VariationError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {v}"
                )));
            }
        }
        for (name, p) in [
            ("stuck_at_off_rate", self.stuck_at_off_rate),
            ("stuck_at_on_rate", self.stuck_at_on_rate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(VariationError::InvalidConfig(format!(
                    "{name} must be a probability, got {p}"
                )));
            }
        }
        if self.stuck_at_off_rate + self.stuck_at_on_rate > 1.0 {
            return Err(VariationError::InvalidConfig(
                "combined stuck-at rates exceed 1".to_string(),
            ));
        }
        if self.levels == 1 {
            return Err(VariationError::InvalidConfig(
                "levels must be 0 (analog) or >= 2".to_string(),
            ));
        }
        if let Some(r) = &self.retention {
            if r.nu < 0.0 || r.t0_seconds <= 0.0 {
                return Err(VariationError::InvalidConfig(
                    "retention needs nu >= 0 and t0 > 0".to_string(),
                ));
            }
        }
        if let Some(wv) = &self.write_verify {
            if wv.max_iterations == 0 {
                return Err(VariationError::InvalidConfig(
                    "write-verify needs at least one iteration".to_string(),
                ));
            }
            if !(0.0..=1.0).contains(&wv.tolerance) {
                return Err(VariationError::InvalidConfig(format!(
                    "write-verify tolerance must be in [0, 1], got {}",
                    wv.tolerance
                )));
            }
        }
        Ok(())
    }

    /// Enables write-verify programming on this corner.
    pub fn with_write_verify(mut self, wv: WriteVerifyConfig) -> Self {
        self.write_verify = Some(wv);
        self
    }

    /// Enables retention drift on this corner.
    pub fn with_retention(mut self, retention: RetentionConfig) -> Self {
        self.retention = Some(retention);
        self
    }

    /// The programming-error σ (temporal + local-spatial combined) that
    /// survives the optional write-verify loop: the verify readback sees
    /// both components, so converged devices end within ±tolerance — a
    /// truncated distribution with σ ≈ `tolerance / sqrt(3)`. Stuck-at
    /// faults and post-programming chip drift are not correctable.
    pub fn effective_programming_sigma(&self) -> f32 {
        let raw = (self.temporal_sigma.powi(2) + self.spatial_local_sigma.powi(2)).sqrt();
        match &self.write_verify {
            None => raw,
            Some(wv) => raw.min(wv.tolerance / (3.0f32).sqrt()),
        }
    }

    /// A scalar summary of how noisy this corner is — used by the surrogate
    /// accuracy model to scale its variation penalty. Ideal devices score 0.
    pub fn severity(&self) -> f32 {
        let quant = if self.levels == 0 {
            0.0
        } else {
            // Uniform quantization error std ≈ step / sqrt(12).
            1.0 / (self.levels as f32 * (12.0f32).sqrt())
        };
        (self.effective_programming_sigma().powi(2)
            + self.spatial_global_sigma.powi(2)
            + quant.powi(2))
        .sqrt()
            + (self.stuck_at_off_rate + self.stuck_at_on_rate) as f32
    }
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig::rram_moderate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            VariationConfig::ideal(),
            VariationConfig::rram_moderate(),
            VariationConfig::rram_severe(),
            VariationConfig::fefet_moderate(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = VariationConfig::ideal();
        cfg.temporal_sigma = -0.1;
        assert!(cfg.validate().is_err());

        let mut cfg = VariationConfig::ideal();
        cfg.stuck_at_off_rate = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = VariationConfig::ideal();
        cfg.levels = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = VariationConfig::ideal();
        cfg.stuck_at_off_rate = 0.6;
        cfg.stuck_at_on_rate = 0.6;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn severity_ordering() {
        let ideal = VariationConfig::ideal().severity();
        let moderate = VariationConfig::rram_moderate().severity();
        let severe = VariationConfig::rram_severe().severity();
        assert_eq!(ideal, 0.0);
        assert!(moderate > ideal);
        assert!(severe > moderate);
    }

    #[test]
    fn value_dependence_scales() {
        assert_eq!(ValueDependence::Constant.scale(0.3), 1.0);
        assert!(ValueDependence::Linear.scale(1.0) > ValueDependence::Linear.scale(0.0));
        let mid = ValueDependence::MidrangePeak;
        assert!(mid.scale(0.5) > mid.scale(0.0));
        assert!(mid.scale(0.5) > mid.scale(1.0));
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = VariationConfig::fefet_moderate();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: VariationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
