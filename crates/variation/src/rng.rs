//! Seedable RNG used by the variation models.
//!
//! Kept crate-local (rather than depending on `lcda-tensor`) so the
//! variation crate stays a leaf dependency that `lcda-neurosim` can use
//! without pulling in the tensor engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream for variation sampling.
///
/// # Example
///
/// ```
/// use lcda_variation::VarRng;
/// let mut a = VarRng::new(3);
/// let mut b = VarRng::new(3);
/// assert_eq!(a.normal(), b.normal());
/// ```
#[derive(Debug, Clone)]
pub struct VarRng {
    inner: StdRng,
}

impl VarRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        VarRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream (one per MC trial / chip
    /// instance).
    pub fn fork(&mut self, salt: u64) -> VarRng {
        let s: u64 = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        VarRng::new(s)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        if lo == hi {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Raw `u64` for seed derivation.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = VarRng::new(5);
        let mut b = VarRng::new(5);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn normal_is_roughly_standard() {
        let mut r = VarRng::new(1);
        let n = 10_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.06);
        assert!((var - 1.0).abs() < 0.1);
    }

    #[test]
    fn forks_differ() {
        let mut parent = VarRng::new(2);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
