//! Monte-Carlo evaluation engine.
//!
//! The paper evaluates DNN performance under device variation "using the
//! Monte Carlo simulation-based method" (Yan et al., ASP-DAC'21): sample
//! many chip instances, measure accuracy on each, report the distribution.
//! This module provides that engine generically over any per-trial metric,
//! with optional multi-threading via `crossbeam::scope`.

use crate::{Result, VariationError};

/// Summary statistics of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct McStats {
    /// Number of trials.
    pub trials: u32,
    /// Sample mean.
    pub mean: f32,
    /// Sample standard deviation (Bessel-corrected).
    pub std: f32,
    /// Minimum observed value.
    pub min: f32,
    /// Maximum observed value.
    pub max: f32,
}

impl McStats {
    /// Computes statistics from raw per-trial values.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::ZeroTrials`] for an empty sample.
    pub fn from_samples(samples: &[f32]) -> Result<Self> {
        if samples.is_empty() {
            return Err(VariationError::ZeroTrials);
        }
        let n = samples.len() as f32;
        let mean = samples.iter().sum::<f32>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / (n - 1.0)
        } else {
            0.0
        };
        Ok(McStats {
            trials: samples.len() as u32,
            mean,
            std: var.sqrt(),
            min: samples.iter().copied().fold(f32::INFINITY, f32::min),
            max: samples.iter().copied().fold(f32::NEG_INFINITY, f32::max),
        })
    }

    /// Half-width of the 95% confidence interval on the mean (normal
    /// approximation).
    pub fn ci95_half_width(&self) -> f32 {
        if self.trials == 0 {
            return 0.0;
        }
        1.96 * self.std / (self.trials as f32).sqrt()
    }

    /// A robustness-oriented summary: `mean − k·std`, the paper-adjacent
    /// "expected accuracy minus k sigma" criterion used when selecting
    /// designs that must not be disastrous under variation.
    pub fn mean_minus_k_std(&self, k: f32) -> f32 {
        self.mean - k * self.std
    }
}

/// Runs `trials` evaluations of `metric(trial_index, trial_seed)`
/// sequentially.
///
/// # Errors
///
/// Returns [`VariationError::ZeroTrials`] when `trials == 0`.
pub fn run<F>(trials: u32, base_seed: u64, metric: F) -> Result<McStats>
where
    F: Fn(u32, u64) -> f32,
{
    if trials == 0 {
        return Err(VariationError::ZeroTrials);
    }
    let samples: Vec<f32> = (0..trials)
        .map(|t| metric(t, trial_seed(base_seed, t)))
        .collect();
    McStats::from_samples(&samples)
}

/// Runs `trials` evaluations across `threads` OS threads using
/// `crossbeam::scope`. The metric must be `Sync` since it is shared.
///
/// Results are identical to [`run`] regardless of thread count because
/// every trial derives its own seed from `base_seed`.
///
/// # Errors
///
/// Returns [`VariationError::ZeroTrials`] when `trials == 0`.
pub fn run_parallel<F>(trials: u32, base_seed: u64, threads: usize, metric: F) -> Result<McStats>
where
    F: Fn(u32, u64) -> f32 + Sync,
{
    try_run_parallel(trials, base_seed, threads, |t, seed| {
        Ok::<f32, std::convert::Infallible>(metric(t, seed))
    })
    .map_err(|e| match e {
        TryRunError::ZeroTrials => VariationError::ZeroTrials,
        TryRunError::Metric(infallible) => match infallible {},
    })
}

/// Error from a fallible Monte-Carlo run ([`try_run_parallel`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryRunError<E> {
    /// The run was asked for zero trials.
    ZeroTrials,
    /// A per-trial metric failed; carries the error of the *lowest-index*
    /// failing trial so the reported error is deterministic regardless of
    /// thread count.
    Metric(E),
}

impl<E: std::fmt::Display> std::fmt::Display for TryRunError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRunError::ZeroTrials => write!(f, "monte-carlo run needs trials > 0"),
            TryRunError::Metric(e) => write!(f, "monte-carlo trial failed: {e}"),
        }
    }
}

/// Like [`run_parallel`] but for fallible metrics: each trial returns
/// `Result<f32, E>` and the first (lowest trial index) failure aborts the
/// statistics. Thread fan-out, seeding and results are otherwise identical
/// to [`run_parallel`] — and therefore bit-identical to the sequential
/// [`run`] for any thread count.
///
/// # Errors
///
/// Returns [`TryRunError::ZeroTrials`] when `trials == 0` and
/// [`TryRunError::Metric`] carrying the lowest-index trial error when any
/// trial fails.
pub fn try_run_parallel<F, E>(
    trials: u32,
    base_seed: u64,
    threads: usize,
    metric: F,
) -> std::result::Result<McStats, TryRunError<E>>
where
    F: Fn(u32, u64) -> std::result::Result<f32, E> + Sync,
    E: Send,
{
    if trials == 0 {
        return Err(TryRunError::ZeroTrials);
    }
    let threads = threads.max(1).min(trials as usize);
    let mut slots: Vec<Option<std::result::Result<f32, E>>> = Vec::new();
    slots.resize_with(trials as usize, || None);
    let chunk = (trials as usize).div_ceil(threads);
    crossbeam::scope(|s| {
        for (w, out_chunk) in slots.chunks_mut(chunk).enumerate() {
            let metric = &metric;
            let start = w * chunk;
            s.spawn(move |_| {
                for (i, out) in out_chunk.iter_mut().enumerate() {
                    let t = (start + i) as u32;
                    *out = Some(metric(t, trial_seed(base_seed, t)));
                }
            });
        }
    })
    .expect("monte-carlo worker panicked");
    let mut samples = Vec::with_capacity(trials as usize);
    for slot in slots {
        match slot.expect("every trial slot is filled") {
            Ok(v) => samples.push(v),
            Err(e) => return Err(TryRunError::Metric(e)),
        }
    }
    McStats::from_samples(&samples).map_err(|_| TryRunError::ZeroTrials)
}

/// Derives the deterministic seed of trial `t` from a base seed.
pub fn trial_seed(base_seed: u64, t: u32) -> u64 {
    // SplitMix64-style mixing keeps adjacent trials decorrelated.
    let mut z = base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of sub-stream `stream` within a trial.
///
/// **Stream-separation invariant.** A Monte-Carlo trial often needs
/// several independent random streams (one per weight matrix, say). Naive
/// derivations like `trial_seed + stream` break down because adjacent
/// trial seeds can collide across `(trial, stream)` pairs — trial `t`
/// stream `k+1` must never alias trial `t'` stream `k`. This function
/// therefore re-mixes *both* inputs through a full-avalanche finalizer
/// (the MurmurHash3 constants, deliberately different from
/// [`trial_seed`]'s SplitMix64 constants so the two derivations never
/// produce overlapping sequences): every output bit depends on every bit
/// of `(seed, stream)`, so distinct pairs map to distinct streams with
/// collision probability ~2⁻⁶⁴.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1));
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant() {
        let s = McStats::from_samples(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn stats_known_values() {
        let s = McStats::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        // Bessel-corrected variance = 5/3.
        assert!((s.std - (5.0f32 / 3.0).sqrt()).abs() < 1e-5);
        assert_eq!((s.min, s.max), (1.0, 4.0));
    }

    #[test]
    fn single_sample_has_zero_std() {
        // The n == 1 guard of the sample-variance convention (shared with
        // Tensor::std, which pins the same [1,2,3,4] -> sqrt(5/3) value).
        let s = McStats::from_samples(&[0.75]).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 0.75);
        assert_eq!((s.min, s.max), (0.75, 0.75));
    }

    #[test]
    fn empty_sample_rejected() {
        assert_eq!(McStats::from_samples(&[]), Err(VariationError::ZeroTrials));
        assert!(run(0, 0, |_, _| 0.0).is_err());
        assert!(run_parallel(0, 0, 4, |_, _| 0.0).is_err());
    }

    #[test]
    fn run_is_deterministic() {
        let f = |_t: u32, seed: u64| (seed % 1000) as f32;
        let a = run(32, 7, f).unwrap();
        let b = run(32, 7, f).unwrap();
        assert_eq!(a, b);
        let c = run(32, 8, f).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |t: u32, seed: u64| ((seed ^ t as u64) % 997) as f32;
        let seq = run(100, 123, f).unwrap();
        for threads in [1, 2, 3, 8, 200] {
            let par = run_parallel(100, 123, threads, f).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for t in 0..10_000u32 {
            assert!(seen.insert(trial_seed(42, t)));
        }
    }

    #[test]
    fn stream_seeds_are_distinct_across_trial_stream_pairs() {
        // The collision the naive `seed + stream` derivation suffers:
        // (trial t, stream k+1) vs (trial t', stream k). Mixed streams
        // must keep every pair distinct.
        let mut seen = std::collections::HashSet::new();
        for t in 0..200u32 {
            let ts = trial_seed(7, t);
            for m in 0..64u64 {
                assert!(seen.insert(stream_seed(ts, m)), "collision at t={t} m={m}");
            }
        }
    }

    #[test]
    fn naive_additive_streams_do_collide() {
        // Documents why stream_seed exists: additive derivation aliases
        // whenever two trial seeds differ by less than the stream count.
        let a = 100u64.wrapping_add(3);
        let b = 101u64.wrapping_add(2);
        assert_eq!(a, b);
        assert_ne!(stream_seed(100, 3), stream_seed(101, 2));
    }

    #[test]
    fn try_run_parallel_matches_run_parallel() {
        let f = |t: u32, seed: u64| ((seed ^ t as u64) % 997) as f32;
        let plain = run_parallel(50, 9, 4, f).unwrap();
        let fallible =
            try_run_parallel(50, 9, 4, |t, s| Ok::<f32, VariationError>(f(t, s))).unwrap();
        assert_eq!(plain, fallible);
    }

    #[test]
    fn try_run_parallel_reports_lowest_failing_trial() {
        for threads in [1, 3, 8] {
            let err = try_run_parallel(
                32,
                0,
                threads,
                |t, _s| {
                    if t >= 5 {
                        Err(t)
                    } else {
                        Ok(0.0)
                    }
                },
            )
            .unwrap_err();
            assert_eq!(err, TryRunError::Metric(5), "threads={threads}");
        }
        assert_eq!(
            try_run_parallel(0, 0, 2, |_, _| Ok::<f32, u32>(0.0)).unwrap_err(),
            TryRunError::ZeroTrials
        );
    }

    #[test]
    fn mean_minus_k_std() {
        let s = McStats::from_samples(&[0.8, 0.9, 1.0]).unwrap();
        assert!(s.mean_minus_k_std(1.0) < s.mean);
        assert_eq!(s.mean_minus_k_std(0.0), s.mean);
    }

    #[test]
    fn ci_shrinks_with_trials() {
        // Same underlying noise, more trials → tighter CI.
        let noisy = |t: u32, _s: u64| if t.is_multiple_of(2) { 0.0 } else { 1.0 };
        let small = run(10, 0, noisy).unwrap();
        let large = run(1000, 0, noisy).unwrap();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }
}
