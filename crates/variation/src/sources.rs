//! Individual non-ideality sources operating on normalized conductances.
//!
//! Each source implements [`VariationSource`] and transforms a conductance
//! in the normalized window `[0, 1]`. Sources compose in the physical
//! order: quantize at programming time → temporal programming noise →
//! local spatial offset → stuck-at faults → global multiplicative drift.

use crate::{ValueDependence, VarRng, VariationConfig};

/// A single non-ideality applied to a normalized conductance.
pub trait VariationSource {
    /// Applies the non-ideality to a conductance `g ∈ [0, 1]` using the
    /// per-trial random stream.
    fn apply(&self, g: f32, rng: &mut VarRng) -> f32;

    /// A short, stable name for logs and reports.
    fn name(&self) -> &'static str;
}

/// Quantization to `levels` programmable conductance states.
#[derive(Debug, Clone, Copy)]
pub struct Quantization {
    levels: u32,
}

impl Quantization {
    /// Creates a quantizer; `levels == 0` means analog (identity).
    pub fn new(levels: u32) -> Self {
        Quantization { levels }
    }
}

impl VariationSource for Quantization {
    fn apply(&self, g: f32, _rng: &mut VarRng) -> f32 {
        if self.levels < 2 {
            return g.clamp(0.0, 1.0);
        }
        let steps = (self.levels - 1) as f32;
        (g.clamp(0.0, 1.0) * steps).round() / steps
    }

    fn name(&self) -> &'static str {
        "quantization"
    }
}

/// Temporal programming variation: additive Gaussian whose σ may depend on
/// the programmed value.
#[derive(Debug, Clone, Copy)]
pub struct TemporalVariation {
    sigma: f32,
    dependence: ValueDependence,
}

impl TemporalVariation {
    /// Creates the source from a base σ and a value-dependence profile.
    pub fn new(sigma: f32, dependence: ValueDependence) -> Self {
        TemporalVariation { sigma, dependence }
    }
}

impl VariationSource for TemporalVariation {
    fn apply(&self, g: f32, rng: &mut VarRng) -> f32 {
        if self.sigma == 0.0 {
            return g;
        }
        let s = self.sigma * self.dependence.scale(g);
        (g + s * rng.normal()).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "temporal"
    }
}

/// Local spatial variation: an independent additive offset per device.
#[derive(Debug, Clone, Copy)]
pub struct LocalSpatialVariation {
    sigma: f32,
}

impl LocalSpatialVariation {
    /// Creates the source from its σ.
    pub fn new(sigma: f32) -> Self {
        LocalSpatialVariation { sigma }
    }
}

impl VariationSource for LocalSpatialVariation {
    fn apply(&self, g: f32, rng: &mut VarRng) -> f32 {
        if self.sigma == 0.0 {
            return g;
        }
        (g + self.sigma * rng.normal()).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "spatial-local"
    }
}

/// Stuck-at faults: with small probability the device reads as fully off
/// or fully on regardless of the programmed value.
#[derive(Debug, Clone, Copy)]
pub struct StuckAtFault {
    off_rate: f64,
    on_rate: f64,
}

impl StuckAtFault {
    /// Creates the source from stuck-at-off / stuck-at-on probabilities.
    pub fn new(off_rate: f64, on_rate: f64) -> Self {
        StuckAtFault { off_rate, on_rate }
    }
}

impl VariationSource for StuckAtFault {
    fn apply(&self, g: f32, rng: &mut VarRng) -> f32 {
        // A single uniform draw decides off / on / healthy so the two fault
        // modes are mutually exclusive.
        let u = rng.uniform(0.0, 1.0) as f64;
        if u < self.off_rate {
            0.0
        } else if u < self.off_rate + self.on_rate {
            1.0
        } else {
            g
        }
    }

    fn name(&self) -> &'static str {
        "stuck-at"
    }
}

/// Chip-wide multiplicative drift: one factor per chip instance, applied to
/// every device. Sampled once via [`GlobalDrift::sample`] and then applied
/// deterministically.
#[derive(Debug, Clone, Copy)]
pub struct GlobalDrift {
    factor: f32,
}

impl GlobalDrift {
    /// Samples a chip-instance drift factor `~ N(1, sigma)` (clamped to be
    /// positive).
    pub fn sample(sigma: f32, rng: &mut VarRng) -> Self {
        let factor = if sigma == 0.0 {
            1.0
        } else {
            (1.0 + sigma * rng.normal()).max(0.05)
        };
        GlobalDrift { factor }
    }

    /// The sampled multiplicative factor.
    pub fn factor(&self) -> f32 {
        self.factor
    }
}

impl VariationSource for GlobalDrift {
    fn apply(&self, g: f32, _rng: &mut VarRng) -> f32 {
        (g * self.factor).clamp(0.0, 1.0)
    }

    fn name(&self) -> &'static str {
        "spatial-global"
    }
}

/// The full per-chip-instance non-ideality pipeline assembled from a
/// [`VariationConfig`].
#[derive(Debug, Clone)]
pub struct VariationPipeline {
    quant: Quantization,
    temporal: TemporalVariation,
    local_sigma: f32,
    stuck: StuckAtFault,
    drift: GlobalDrift,
    write_verify: Option<crate::WriteVerifyConfig>,
    retention: Option<crate::RetentionConfig>,
}

impl VariationPipeline {
    /// Instantiates the pipeline for one chip instance (one Monte-Carlo
    /// trial): the global drift is sampled here, per-device noise is
    /// sampled in [`VariationPipeline::program`].
    pub fn for_chip(config: &VariationConfig, rng: &mut VarRng) -> Self {
        VariationPipeline {
            quant: Quantization::new(config.levels),
            temporal: TemporalVariation::new(config.temporal_sigma, config.value_dependence),
            local_sigma: config.spatial_local_sigma,
            stuck: StuckAtFault::new(config.stuck_at_off_rate, config.stuck_at_on_rate),
            drift: GlobalDrift::sample(config.spatial_global_sigma, rng),
            write_verify: config.write_verify,
            retention: config.retention,
        }
    }

    /// Simulates programming a target conductance into one device of this
    /// chip instance and reading it back.
    pub fn program(&self, g_target: f32, rng: &mut VarRng) -> f32 {
        self.program_with_writes(g_target, rng).0
    }

    /// Like [`VariationPipeline::program`] but also reports the number of
    /// programming pulses used (1 without write-verify) so callers can
    /// account for write energy.
    pub fn program_with_writes(&self, g_target: f32, rng: &mut VarRng) -> (f32, u32) {
        let q_target = self.quant.apply(g_target, rng);
        // The device's local spatial offset is a fixed manufacturing
        // property: sampled once, constant across verify iterations.
        let offset = self.local_sigma * rng.normal();
        let one_pulse = |rng: &mut VarRng| -> f32 {
            (self.temporal.apply(q_target, rng) + offset).clamp(0.0, 1.0)
        };
        let (g_programmed, writes) = match &self.write_verify {
            None => (one_pulse(rng), 1),
            Some(wv) => {
                let mut g = one_pulse(rng);
                let mut writes = 1;
                // Verify readback sees the full programming error
                // (temporal + local offset); reprogram while out of
                // tolerance and budget remains.
                while (g - q_target).abs() > wv.tolerance && writes < wv.max_iterations {
                    g = one_pulse(rng);
                    writes += 1;
                }
                (g, writes)
            }
        };
        let g = self.stuck.apply(g_programmed, rng);
        (self.drift.apply(g, rng), writes)
    }

    /// Reads back a conductance `elapsed_seconds` after programming:
    /// applies the retention power law on top of the programming result.
    /// Stuck-at-on devices keep reading high (their conduction path is
    /// not a programmed filament), so drift applies to the programmed
    /// value before the fault model.
    pub fn read_after(&self, g_target: f32, elapsed_seconds: f64, rng: &mut VarRng) -> f32 {
        let g = self.program(g_target, rng);
        match &self.retention {
            None => g,
            Some(r) => (g * r.factor(elapsed_seconds)).clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VariationConfig;

    #[test]
    fn quantization_snaps_to_grid() {
        let q = Quantization::new(5); // levels at 0, .25, .5, .75, 1
        let mut rng = VarRng::new(0);
        assert_eq!(q.apply(0.30, &mut rng), 0.25);
        assert_eq!(q.apply(0.40, &mut rng), 0.5);
        assert_eq!(q.apply(1.7, &mut rng), 1.0);
        assert_eq!(q.apply(-0.3, &mut rng), 0.0);
    }

    #[test]
    fn analog_quantization_is_identity() {
        let q = Quantization::new(0);
        let mut rng = VarRng::new(0);
        assert_eq!(q.apply(0.333, &mut rng), 0.333);
    }

    #[test]
    fn temporal_zero_sigma_is_identity() {
        let t = TemporalVariation::new(0.0, ValueDependence::Linear);
        let mut rng = VarRng::new(0);
        assert_eq!(t.apply(0.5, &mut rng), 0.5);
    }

    #[test]
    fn temporal_noise_has_expected_spread() {
        let t = TemporalVariation::new(0.1, ValueDependence::Constant);
        let mut rng = VarRng::new(1);
        let n = 5000;
        let xs: Vec<f32> = (0..n).map(|_| t.apply(0.5, &mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let std = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32).sqrt();
        assert!((mean - 0.5).abs() < 0.01);
        assert!((std - 0.1).abs() < 0.01);
    }

    #[test]
    fn value_dependent_noise_larger_at_high_g() {
        let t = TemporalVariation::new(0.05, ValueDependence::Linear);
        let mut rng = VarRng::new(2);
        let spread = |g: f32, rng: &mut VarRng| {
            let xs: Vec<f32> = (0..4000).map(|_| t.apply(g, rng)).collect();
            let mean = xs.iter().sum::<f32>() / xs.len() as f32;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / xs.len() as f32).sqrt()
        };
        // g=0.9 keeps samples inside [0,1] so clamping doesn't bias the std.
        assert!(spread(0.8, &mut rng) > spread(0.1, &mut rng) * 1.3);
    }

    #[test]
    fn stuck_at_rates_observed() {
        let s = StuckAtFault::new(0.1, 0.05);
        let mut rng = VarRng::new(3);
        let n = 20_000;
        let mut off = 0;
        let mut on = 0;
        for _ in 0..n {
            let g = s.apply(0.5, &mut rng);
            if g == 0.0 {
                off += 1;
            } else if g == 1.0 {
                on += 1;
            }
        }
        let off_rate = off as f64 / n as f64;
        let on_rate = on as f64 / n as f64;
        assert!((off_rate - 0.1).abs() < 0.01, "off {off_rate}");
        assert!((on_rate - 0.05).abs() < 0.01, "on {on_rate}");
    }

    #[test]
    fn global_drift_is_constant_per_chip() {
        let mut rng = VarRng::new(4);
        let d = GlobalDrift::sample(0.1, &mut rng);
        let mut r2 = VarRng::new(9);
        let a = d.apply(0.5, &mut r2);
        let b = d.apply(0.5, &mut r2);
        assert_eq!(a, b);
        assert!((a / 0.5 - d.factor()).abs() < 1e-6);
    }

    #[test]
    fn ideal_pipeline_is_identity_up_to_quantization() {
        let cfg = VariationConfig::ideal();
        let mut rng = VarRng::new(5);
        let p = VariationPipeline::for_chip(&cfg, &mut rng);
        for g in [0.0, 0.25, 0.333, 1.0] {
            assert_eq!(p.program(g, &mut rng), g.clamp(0.0, 1.0));
        }
    }

    #[test]
    fn pipeline_outputs_stay_in_window() {
        let cfg = VariationConfig::rram_severe();
        let mut rng = VarRng::new(6);
        let p = VariationPipeline::for_chip(&cfg, &mut rng);
        for i in 0..2000 {
            let g = (i % 11) as f32 / 10.0;
            let out = p.program(g, &mut rng);
            assert!((0.0..=1.0).contains(&out), "g={g} out={out}");
        }
    }

    #[test]
    fn source_names_nonempty() {
        let mut rng = VarRng::new(0);
        let sources: Vec<Box<dyn VariationSource>> = vec![
            Box::new(Quantization::new(4)),
            Box::new(TemporalVariation::new(0.1, ValueDependence::Constant)),
            Box::new(LocalSpatialVariation::new(0.1)),
            Box::new(StuckAtFault::new(0.0, 0.0)),
            Box::new(GlobalDrift::sample(0.0, &mut rng)),
        ];
        for s in &sources {
            assert!(!s.name().is_empty());
        }
    }
}

#[cfg(test)]
mod write_verify_tests {
    use super::*;
    use crate::{VariationConfig, WriteVerifyConfig};

    fn spread(cfg: &VariationConfig, n: u32, seed: u64) -> (f32, f64) {
        // (error std around target, mean writes per device)
        let mut rng = VarRng::new(seed);
        let p = VariationPipeline::for_chip(cfg, &mut rng);
        let mut sq = 0.0f64;
        let mut writes = 0u64;
        for _ in 0..n {
            let (g, w) = p.program_with_writes(0.5, &mut rng);
            sq += f64::from((g - 0.5) * (g - 0.5));
            writes += u64::from(w);
        }
        (
            ((sq / f64::from(n)) as f32).sqrt(),
            writes as f64 / f64::from(n),
        )
    }

    fn rram_no_drift() -> VariationConfig {
        // Isolate the programming error: no global drift, no faults, no
        // quantization (0.5 is on-grid anyway for even level counts).
        let mut cfg = VariationConfig::rram_moderate();
        cfg.spatial_global_sigma = 0.0;
        cfg.stuck_at_off_rate = 0.0;
        cfg.stuck_at_on_rate = 0.0;
        cfg.levels = 0;
        cfg
    }

    #[test]
    fn write_verify_tightens_programming() {
        let base = rram_no_drift();
        let wv = base.clone().with_write_verify(WriteVerifyConfig {
            max_iterations: 20,
            tolerance: 0.01,
        });
        let (std_base, w_base) = spread(&base, 4000, 1);
        let (std_wv, w_wv) = spread(&wv, 4000, 1);
        assert!(std_wv < std_base / 3.0, "std {std_wv} vs {std_base}");
        assert!((w_base - 1.0).abs() < 1e-9);
        assert!(w_wv > 2.0, "verify should need extra pulses, got {w_wv}");
    }

    #[test]
    fn write_verify_respects_iteration_budget() {
        let wv = rram_no_drift().with_write_verify(WriteVerifyConfig {
            max_iterations: 3,
            tolerance: 1e-6, // practically unreachable
        });
        let (_, w) = spread(&wv, 500, 2);
        assert!(w <= 3.0 + 1e-9);
        assert!(w > 2.5, "budget should be exhausted, got {w}");
    }

    #[test]
    fn write_verify_cannot_fix_stuck_at() {
        let mut cfg = rram_no_drift().with_write_verify(WriteVerifyConfig::standard());
        cfg.stuck_at_off_rate = 0.2;
        let mut rng = VarRng::new(3);
        let p = VariationPipeline::for_chip(&cfg, &mut rng);
        let zeros = (0..2000)
            .filter(|_| p.program(0.9, &mut rng) == 0.0)
            .count();
        let rate = zeros as f64 / 2000.0;
        assert!((rate - 0.2).abs() < 0.03, "stuck-at rate {rate}");
    }

    #[test]
    fn effective_sigma_and_severity_reflect_verify() {
        let base = VariationConfig::rram_severe();
        let wv = base
            .clone()
            .with_write_verify(WriteVerifyConfig::standard());
        assert!(wv.effective_programming_sigma() < base.effective_programming_sigma());
        assert!(wv.severity() < base.severity());
    }

    #[test]
    fn write_verify_validation() {
        let bad = VariationConfig::ideal().with_write_verify(WriteVerifyConfig {
            max_iterations: 0,
            tolerance: 0.01,
        });
        assert!(bad.validate().is_err());
        let bad = VariationConfig::ideal().with_write_verify(WriteVerifyConfig {
            max_iterations: 5,
            tolerance: 2.0,
        });
        assert!(bad.validate().is_err());
        let good = VariationConfig::ideal().with_write_verify(WriteVerifyConfig::standard());
        assert!(good.validate().is_ok());
    }
}
