use std::fmt;

/// Error type for variation-model configuration and Monte-Carlo runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VariationError {
    /// A configuration value was outside its valid range.
    InvalidConfig(String),
    /// A Monte-Carlo run was requested with zero trials.
    ZeroTrials,
}

impl fmt::Display for VariationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariationError::InvalidConfig(msg) => write!(f, "invalid variation config: {msg}"),
            VariationError::ZeroTrials => write!(f, "monte-carlo run needs at least one trial"),
        }
    }
}

impl std::error::Error for VariationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VariationError::ZeroTrials.to_string().contains("trial"));
        assert!(VariationError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<VariationError>();
    }
}
