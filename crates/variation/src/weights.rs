//! Differential weight-to-conductance mapping and whole-tensor
//! perturbation.
//!
//! CiM crossbars store a signed DNN weight `w ∈ [-w_max, w_max]` as a
//! *differential pair* of conductances `(g⁺, g⁻)` with
//! `w ∝ g⁺ − g⁻`; positive weights program `g⁺`, negative weights `g⁻`,
//! and the other device of the pair stays at `g_min`. Both devices of the
//! pair experience the non-idealities independently, which is why even a
//! zero weight reads back noisy.

use crate::sources::VariationPipeline;
use crate::{VarRng, VariationConfig};

/// Perturbs whole weight buffers the way crossbar programming would.
///
/// # Example
///
/// ```
/// use lcda_variation::{VariationConfig, weights::WeightPerturber};
/// let p = WeightPerturber::new(VariationConfig::ideal(), 1.0);
/// let mut w = vec![0.5f32, -0.5];
/// p.perturb(&mut w, 1);
/// assert_eq!(w, vec![0.5, -0.5]); // ideal devices are exact (analog)
/// ```
#[derive(Debug, Clone)]
pub struct WeightPerturber {
    config: VariationConfig,
    w_max: f32,
}

impl WeightPerturber {
    /// Creates a perturber for weights clipped to `[-w_max, w_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `w_max` is not strictly positive and finite.
    pub fn new(config: VariationConfig, w_max: f32) -> Self {
        assert!(
            w_max > 0.0 && w_max.is_finite(),
            "w_max must be positive and finite"
        );
        WeightPerturber { config, w_max }
    }

    /// The variation configuration in use.
    pub fn config(&self) -> &VariationConfig {
        &self.config
    }

    /// The weight clipping magnitude.
    pub fn w_max(&self) -> f32 {
        self.w_max
    }

    /// Perturbs `weights` in place, simulating one chip-programming pass
    /// read back immediately.
    ///
    /// `trial_seed` selects the chip instance: the same seed reproduces the
    /// same perturbation, different seeds give independent Monte-Carlo
    /// trials.
    pub fn perturb(&self, weights: &mut [f32], trial_seed: u64) {
        self.perturb_after(weights, trial_seed, 0.0);
    }

    /// Like [`WeightPerturber::perturb`] but reads the crossbar
    /// `elapsed_seconds` after programming, applying any retention drift
    /// the corner configures.
    pub fn perturb_after(&self, weights: &mut [f32], trial_seed: u64, elapsed_seconds: f64) {
        let mut rng = VarRng::new(trial_seed);
        let pipeline = VariationPipeline::for_chip(&self.config, &mut rng);
        for w in weights.iter_mut() {
            *w = self.perturb_one(*w, &pipeline, &mut rng, elapsed_seconds);
        }
    }

    /// Materializes one perturbed copy of `clean` per seed — the batched
    /// form the fused Monte-Carlo engine uses to precompute every trial's
    /// weights for a matrix before stacking them into one GEMM.
    ///
    /// Each copy is produced by exactly the code path of
    /// [`WeightPerturber::perturb_after`] with that seed, so element `t`
    /// of the result is bit-identical to what the sequential per-trial
    /// path would have written into its cloned network.
    pub fn perturb_batch(
        &self,
        clean: &[f32],
        seeds: &[u64],
        elapsed_seconds: f64,
    ) -> Vec<Vec<f32>> {
        seeds
            .iter()
            .map(|&seed| {
                let mut copy = clean.to_vec();
                self.perturb_after(&mut copy, seed, elapsed_seconds);
                copy
            })
            .collect()
    }

    /// Perturbs a single weight through the differential pair.
    fn perturb_one(
        &self,
        w: f32,
        pipeline: &VariationPipeline,
        rng: &mut VarRng,
        elapsed_seconds: f64,
    ) -> f32 {
        let clipped = w.clamp(-self.w_max, self.w_max);
        let g_norm = clipped.abs() / self.w_max;
        let (g_pos_t, g_neg_t) = if clipped >= 0.0 {
            (g_norm, 0.0)
        } else {
            (0.0, g_norm)
        };
        let g_pos = pipeline.read_after(g_pos_t, elapsed_seconds, rng);
        let g_neg = pipeline.read_after(g_neg_t, elapsed_seconds, rng);
        (g_pos - g_neg) * self.w_max
    }

    /// Standard deviation of the read-back error for a batch of weights —
    /// a cheap empirical summary used in calibration tests.
    pub fn empirical_error_std(&self, weights: &[f32], trials: u32, seed: u64) -> f32 {
        let mut sq = 0.0f64;
        let mut n = 0u64;
        for t in 0..trials {
            let mut w = weights.to_vec();
            self.perturb(&mut w, seed.wrapping_add(t as u64));
            for (a, b) in w.iter().zip(weights) {
                let d = (a - b.clamp(-self.w_max, self.w_max)) as f64;
                sq += d * d;
                n += 1;
            }
        }
        ((sq / n.max(1) as f64) as f32).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_analog_roundtrips_exactly() {
        let p = WeightPerturber::new(VariationConfig::ideal(), 2.0);
        let orig = vec![0.0f32, 1.0, -1.5, 2.0, -2.0, 0.123];
        let mut w = orig.clone();
        p.perturb(&mut w, 42);
        for (a, b) in w.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn clipping_applied() {
        let p = WeightPerturber::new(VariationConfig::ideal(), 1.0);
        let mut w = vec![5.0f32, -7.0];
        p.perturb(&mut w, 0);
        assert_eq!(w, vec![1.0, -1.0]);
    }

    #[test]
    fn same_seed_reproduces() {
        let p = WeightPerturber::new(VariationConfig::rram_moderate(), 1.0);
        let mut a = vec![0.3f32; 64];
        let mut b = vec![0.3f32; 64];
        p.perturb(&mut a, 9);
        p.perturb(&mut b, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = WeightPerturber::new(VariationConfig::rram_moderate(), 1.0);
        let mut a = vec![0.3f32; 64];
        let mut b = vec![0.3f32; 64];
        p.perturb(&mut a, 1);
        p.perturb(&mut b, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn severe_corner_noisier_than_moderate() {
        let w: Vec<f32> = (0..512).map(|i| ((i as f32) / 256.0) - 1.0).collect();
        let moderate = WeightPerturber::new(VariationConfig::rram_moderate(), 1.0)
            .empirical_error_std(&w, 8, 0);
        let severe =
            WeightPerturber::new(VariationConfig::rram_severe(), 1.0).empirical_error_std(&w, 8, 0);
        assert!(severe > moderate, "severe {severe} moderate {moderate}");
    }

    #[test]
    fn zero_weight_reads_noisy_under_variation() {
        // The differential pair means even w=0 suffers programming noise.
        let p = WeightPerturber::new(VariationConfig::rram_severe(), 1.0);
        let mut w = vec![0.0f32; 256];
        p.perturb(&mut w, 3);
        assert!(w.iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "w_max")]
    fn zero_wmax_panics() {
        let _ = WeightPerturber::new(VariationConfig::ideal(), 0.0);
    }

    #[test]
    fn perturb_batch_matches_sequential_perturbs_bitwise() {
        let p = WeightPerturber::new(VariationConfig::rram_moderate(), 1.0);
        let clean: Vec<f32> = (0..96).map(|i| ((i as f32) / 48.0) - 1.0).collect();
        let seeds = [7u64, 11, 13, 7];
        let batch = p.perturb_batch(&clean, &seeds, 5.0);
        assert_eq!(batch.len(), seeds.len());
        for (copy, &seed) in batch.iter().zip(&seeds) {
            let mut expected = clean.clone();
            p.perturb_after(&mut expected, seed, 5.0);
            assert_eq!(copy, &expected);
        }
        assert!(p.perturb_batch(&clean, &[], 0.0).is_empty());
    }
}

#[cfg(test)]
mod retention_tests {
    use super::*;
    use crate::RetentionConfig;

    #[test]
    fn drift_shrinks_weight_magnitudes_over_time() {
        let cfg = VariationConfig::ideal().with_retention(RetentionConfig::pcm_like());
        let p = WeightPerturber::new(cfg, 1.0);
        let orig = vec![0.8f32, -0.6, 0.4, -0.2];
        let mut fresh = orig.clone();
        p.perturb_after(&mut fresh, 0, 0.0);
        let mut aged = orig.clone();
        p.perturb_after(&mut aged, 0, 3600.0 * 24.0 * 30.0); // one month
        for ((f, a), o) in fresh.iter().zip(&aged).zip(&orig) {
            assert!((f - o).abs() < 1e-6, "fresh read should be exact");
            assert!(a.abs() < f.abs(), "aged {a} should shrink vs fresh {f}");
            assert_eq!(a.signum(), o.signum(), "drift keeps the sign");
        }
    }

    #[test]
    fn drift_factor_is_monotone_in_time() {
        let r = RetentionConfig::pcm_like();
        let mut prev = 1.0f32;
        for &t in &[0.0, 1.0, 3600.0, 86400.0, 86400.0 * 365.0] {
            let f = r.factor(t);
            assert!(f <= prev + 1e-9, "factor must decay: {f} after {prev}");
            assert!(f > 0.0);
            prev = f;
        }
        assert_eq!(r.factor(0.0), 1.0);
    }

    #[test]
    fn zero_nu_is_identity() {
        let r = RetentionConfig {
            nu: 0.0,
            t0_seconds: 1.0,
        };
        assert_eq!(r.factor(1e9), 1.0);
    }

    #[test]
    fn retention_validation() {
        let bad = VariationConfig::ideal().with_retention(RetentionConfig {
            nu: -0.1,
            t0_seconds: 1.0,
        });
        assert!(bad.validate().is_err());
        let bad = VariationConfig::ideal().with_retention(RetentionConfig {
            nu: 0.1,
            t0_seconds: 0.0,
        });
        assert!(bad.validate().is_err());
    }
}
