//! Criterion bench for the FIG2 experiment: times the two searches whose
//! outputs regenerate Fig. 2.

use criterion::{criterion_group, criterion_main, Criterion};
use lcda_bench::experiments::{LCDA_EPISODES, NACIM_EPISODES};
use lcda_core::space::DesignSpace;
use lcda_core::{CoDesign, CoDesignConfig, Objective, OptimizerSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let space = DesignSpace::nacim_cifar10();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("lcda_20_episodes", |b| {
        b.iter(|| {
            let cfg = CoDesignConfig::builder(Objective::AccuracyEnergy)
                .episodes(LCDA_EPISODES)
                .seed(1)
                .build();
            let out = CoDesign::builder(space.clone(), cfg)
                .optimizer(OptimizerSpec::ExpertLlm)
                .build()
                .unwrap()
                .run()
                .unwrap();
            black_box(out.best.reward)
        })
    });
    g.bench_function("nacim_500_episodes", |b| {
        b.iter(|| {
            let cfg = CoDesignConfig::builder(Objective::AccuracyEnergy)
                .episodes(NACIM_EPISODES)
                .seed(1)
                .build();
            let out = CoDesign::builder(space.clone(), cfg)
                .optimizer(OptimizerSpec::Rl)
                .build()
                .unwrap()
                .run()
                .unwrap();
            black_box(out.best.reward)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
