//! Criterion bench for the FIG5 ablation (expert vs naive persona).

use criterion::{criterion_group, criterion_main, Criterion};
use lcda_bench::experiments::LCDA_EPISODES;
use lcda_core::space::DesignSpace;
use lcda_core::{CoDesign, CoDesignConfig, Objective, OptimizerSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let space = DesignSpace::nacim_cifar10();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for (name, naive) in [("lcda_expert_20", false), ("lcda_naive_20", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = CoDesignConfig::builder(Objective::AccuracyEnergy)
                    .episodes(LCDA_EPISODES)
                    .seed(3)
                    .build();
                let spec = if naive {
                    OptimizerSpec::NaiveLlm
                } else {
                    OptimizerSpec::ExpertLlm
                };
                let run = CoDesign::builder(space.clone(), cfg)
                    .optimizer(spec)
                    .build();
                black_box(run.unwrap().run().unwrap().best.reward)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
