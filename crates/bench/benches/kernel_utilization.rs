//! Criterion bench for the KERNEL-UTIL mechanism table.

use criterion::{criterion_group, criterion_main, Criterion};
use lcda_bench::experiments::kernel_utilization;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("kernel_utilization_table", |b| {
        b.iter(|| black_box(kernel_utilization()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
