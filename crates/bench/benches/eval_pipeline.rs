//! Criterion bench for the evaluation pipeline: Monte-Carlo accuracy
//! (sequential vs 4 worker threads vs the fused one-GEMM-per-layer
//! engine, 32 trials), int8 inference, the blocked GEMM microkernel vs
//! the scalar reference, and memoized re-evaluation (cold vs cache-hit).
//! Besides the Criterion groups, the bench writes
//! `artifacts/BENCH_eval.json` — the machine-readable perf baseline
//! future PRs diff against.

use criterion::{criterion_group, Criterion};
use lcda_core::backend::CimBackend;
use lcda_core::journal::{Journal, RunReport};
use lcda_core::pipeline::EvalPipeline;
use lcda_core::space::DesignSpace;
use lcda_core::surrogate::SurrogateEvaluator;
use lcda_dnn::arch::Architecture;
use lcda_dnn::dataset::SynthCifar;
use lcda_dnn::mc_eval::{mc_accuracy, McEvalConfig, McStrategy, Precision};
use lcda_dnn::network::Network;
use lcda_tensor::ops::{gemm_f32, gemm_ref};
use lcda_variation::VariationConfig;
use std::hint::black_box;
use std::time::Instant;

const MC_TRIALS: u32 = 32;
const MC_THREADS: usize = 4;

/// GEMM microbenchmark shape: deep enough to exercise the KC panel loop,
/// wide enough to exercise the NC panel loop.
const GEMM_M: usize = 64;
const GEMM_K: usize = 256;
const GEMM_N: usize = 256;

fn mc_fixture() -> (Network, SynthCifar) {
    let net = Architecture::tiny_test().build(3).expect("valid arch");
    let data = SynthCifar::generate_classes(48, 8, 4, 17).expect("valid dataset");
    (net, data)
}

/// Per-trial strategy config: the historical baseline the committed
/// `sequential_ns`/`parallel_ns` numbers track, so their ratio stays
/// comparable across versions.
fn mc_cfg(threads: usize) -> McEvalConfig {
    McEvalConfig {
        trials: MC_TRIALS,
        variation: VariationConfig::rram_moderate(),
        seed: 9,
        threads,
        strategy: McStrategy::PerTrial,
        precision: Precision::F32,
    }
}

fn fused_cfg(precision: Precision) -> McEvalConfig {
    McEvalConfig {
        strategy: McStrategy::Fused,
        precision,
        ..mc_cfg(1)
    }
}

fn gemm_operands() -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..GEMM_M * GEMM_K)
        .map(|i| ((i % 251) as f32) / 125.5 - 1.0)
        .collect();
    let b: Vec<f32> = (0..GEMM_K * GEMM_N)
        .map(|i| ((i % 241) as f32) / 120.5 - 1.0)
        .collect();
    (a, b)
}

fn surrogate_pipeline() -> (EvalPipeline, lcda_llm::design::CandidateDesign) {
    let space = DesignSpace::nacim_cifar10();
    let design = space.reference_design();
    let pipeline = EvalPipeline::new(
        Box::new(SurrogateEvaluator::new(space.clone(), 0)),
        Box::new(CimBackend::new(space)),
    );
    (pipeline, design)
}

fn bench(c: &mut Criterion) {
    let (mut net, data) = mc_fixture();
    let mut g = c.benchmark_group("eval_pipeline");
    g.sample_size(10);
    g.bench_function("mc_accuracy_32trials_seq", |b| {
        b.iter(|| black_box(mc_accuracy(&mut net, &data, &mc_cfg(1)).unwrap().mean))
    });
    g.bench_function("mc_accuracy_32trials_4threads", |b| {
        b.iter(|| {
            black_box(
                mc_accuracy(&mut net, &data, &mc_cfg(MC_THREADS))
                    .unwrap()
                    .mean,
            )
        })
    });
    g.bench_function("mc_accuracy_32trials_fused", |b| {
        b.iter(|| {
            black_box(
                mc_accuracy(&mut net, &data, &fused_cfg(Precision::F32))
                    .unwrap()
                    .mean,
            )
        })
    });
    g.bench_function("mc_accuracy_32trials_fused_int8", |b| {
        b.iter(|| {
            black_box(
                mc_accuracy(&mut net, &data, &fused_cfg(Precision::Int8))
                    .unwrap()
                    .mean,
            )
        })
    });
    let (ga, gb) = gemm_operands();
    g.bench_function("gemm_blocked_64x256x256", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; GEMM_M * GEMM_N];
            gemm_f32(GEMM_M, GEMM_K, GEMM_N, &ga, &gb, &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("gemm_scalar_64x256x256", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; GEMM_M * GEMM_N];
            gemm_ref(GEMM_M, GEMM_K, GEMM_N, &ga, &gb, &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("pipeline_cold_eval", |b| {
        b.iter(|| {
            let (mut p, d) = surrogate_pipeline();
            black_box(p.evaluate(&d).unwrap().0)
        })
    });
    let (mut warm, design) = surrogate_pipeline();
    warm.evaluate(&design).unwrap();
    g.bench_function("pipeline_cache_hit", |b| {
        b.iter(|| black_box(warm.evaluate(&design).unwrap().0))
    });
    g.finish();
}

/// Mean wall-clock nanoseconds of `reps` calls to `f`.
fn time_ns(reps: u32, mut f: impl FnMut() -> f64) -> f64 {
    let start = Instant::now();
    let mut sink = 0.0;
    for _ in 0..reps {
        sink += f();
    }
    black_box(sink);
    start.elapsed().as_nanos() as f64 / f64::from(reps)
}

/// Writes `artifacts/BENCH_eval.json`: the pipeline's perf baseline.
fn write_artifact() -> std::io::Result<()> {
    let (mut net, data) = mc_fixture();
    let mc_seq = time_ns(3, || {
        f64::from(mc_accuracy(&mut net, &data, &mc_cfg(1)).unwrap().mean)
    });
    let mc_par = time_ns(3, || {
        f64::from(
            mc_accuracy(&mut net, &data, &mc_cfg(MC_THREADS))
                .unwrap()
                .mean,
        )
    });
    let mc_fused = time_ns(3, || {
        f64::from(
            mc_accuracy(&mut net, &data, &fused_cfg(Precision::F32))
                .unwrap()
                .mean,
        )
    });
    let mc_int8 = time_ns(3, || {
        f64::from(
            mc_accuracy(&mut net, &data, &fused_cfg(Precision::Int8))
                .unwrap()
                .mean,
        )
    });
    let (ga, gb) = gemm_operands();
    let gemm_blocked = time_ns(20, || {
        let mut out = vec![0.0f32; GEMM_M * GEMM_N];
        gemm_f32(GEMM_M, GEMM_K, GEMM_N, &ga, &gb, &mut out);
        f64::from(out[0])
    });
    let gemm_scalar = time_ns(20, || {
        let mut out = vec![0.0f32; GEMM_M * GEMM_N];
        gemm_ref(GEMM_M, GEMM_K, GEMM_N, &ga, &gb, &mut out);
        f64::from(out[0])
    });
    let cold = time_ns(10, || {
        let (mut p, d) = surrogate_pipeline();
        p.evaluate(&d).unwrap().0
    });
    let (mut warm, design) = surrogate_pipeline();
    warm.evaluate(&design).unwrap();
    let hit = time_ns(200, || warm.evaluate(&design).unwrap().0);

    // The same cold + warm evaluation under an in-memory journal, so the
    // artifact carries the observability layer's counters alongside the
    // timings (and proves journaling costs no correctness).
    let (journal, buffer) = Journal::in_memory();
    let (mut journaled, jd) = surrogate_pipeline();
    journaled.set_journal(journal.clone());
    journaled.evaluate(&jd).unwrap();
    journaled.evaluate(&jd).unwrap();
    journal.finish().map_err(std::io::Error::other)?;
    let counters = RunReport::from_jsonl(&buffer.contents()).map_err(std::io::Error::other)?;

    let report = serde_json::json!({
        "bench": "eval_pipeline",
        "cores": std::thread::available_parallelism().map_or(1, usize::from),
        "mc": {
            "trials": MC_TRIALS,
            "threads": MC_THREADS,
            "sequential_ns": mc_seq,
            "parallel_ns": mc_par,
            "speedup": mc_seq / mc_par,
            "fused_ns": mc_fused,
            "fused_speedup": mc_seq / mc_fused,
            "int8_ns": mc_int8,
        },
        "gemm": {
            "m": GEMM_M,
            "k": GEMM_K,
            "n": GEMM_N,
            "scalar_ns": gemm_scalar,
            "blocked_ns": gemm_blocked,
            "speedup": gemm_scalar / gemm_blocked,
        },
        "cache": {
            "cold_eval_ns": cold,
            "hit_eval_ns": hit,
            "speedup": cold / hit,
        },
        "journal": {
            "records": counters.records,
            "evals": counters.evals,
            "cache_hits": counters.cache.hits,
            "cache_misses": counters.cache.misses,
            "cache_inserts": counters.cache.inserts,
            "backend_calls": counters.backend_calls,
        },
    });
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../artifacts/BENCH_eval.json"
    );
    std::fs::write(path, format!("{:#}\n", report))?;
    println!("wrote {path}");
    Ok(())
}

criterion_group!(benches, bench);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    if let Err(e) = write_artifact() {
        eprintln!("BENCH_eval.json not written: {e}");
    }
}
