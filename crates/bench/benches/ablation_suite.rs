//! Criterion bench for the repository ablation sweep (heaviest target:
//! three 500-episode baselines plus the LLM runs).

use criterion::{criterion_group, criterion_main, Criterion};
use lcda_bench::experiments::ablation_suite;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("full_suite_one_seed", |b| {
        b.iter(|| black_box(ablation_suite(1)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
