//! Criterion bench for the FIG3 experiment: per-episode cost of each
//! optimizer (the quantity behind the reward-vs-episode curves).

use criterion::{criterion_group, criterion_main, Criterion};
use lcda_core::space::DesignSpace;
use lcda_core::{CoDesign, CoDesignConfig, Objective, OptimizerSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let space = DesignSpace::nacim_cifar10();
    let mut g = c.benchmark_group("fig3_per_episode");
    g.sample_size(20);
    // One episode (propose + evaluate + observe) per optimizer, measured
    // by running a 5-episode budget and dividing mentally; Criterion
    // reports the 5-episode time.
    g.bench_function("lcda_5_episodes", |b| {
        b.iter(|| {
            let cfg = CoDesignConfig::builder(Objective::AccuracyEnergy)
                .episodes(5)
                .seed(2)
                .build();
            black_box(
                CoDesign::builder(space.clone(), cfg)
                    .optimizer(OptimizerSpec::ExpertLlm)
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
                    .best
                    .reward,
            )
        })
    });
    g.bench_function("nacim_5_episodes", |b| {
        b.iter(|| {
            let cfg = CoDesignConfig::builder(Objective::AccuracyEnergy)
                .episodes(5)
                .seed(2)
                .build();
            black_box(
                CoDesign::builder(space.clone(), cfg)
                    .optimizer(OptimizerSpec::Rl)
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
                    .best
                    .reward,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
