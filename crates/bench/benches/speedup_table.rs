//! Criterion bench for the SPEEDUP analysis pipeline (one seed).

use criterion::{criterion_group, criterion_main, Criterion};
use lcda_bench::experiments::speedup_table;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("speedup");
    g.sample_size(10);
    g.bench_function("one_seed_full_comparison", |b| {
        b.iter(|| black_box(speedup_table(&[1], 0.02)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
