//! Micro-benchmarks of the substrates every episode leans on: the conv
//! kernel, the crossbar macro, the mapper, the chip rollup, the
//! Monte-Carlo engine, prompt render/parse and the surrogate evaluator.

use criterion::{criterion_group, criterion_main, Criterion};
use lcda_core::evaluate::AccuracyEvaluator;
use lcda_core::space::DesignSpace;
use lcda_core::surrogate::SurrogateEvaluator;
use lcda_llm::design::DesignChoices;
use lcda_llm::parse::parse_design;
use lcda_llm::prompt::{HistoryEntry, PromptBuilder};
use lcda_neurosim::chip::{Chip, ChipConfig};
use lcda_neurosim::isaac::reference_network;
use lcda_neurosim::mapper::{LayerMapping, LayerWorkload, Precision};
use lcda_tensor::ops::{conv2d_forward, Conv2dParams, ConvGeometry};
use lcda_tensor::rng::SeedRng;
use lcda_tensor::{Shape, Tensor};
use lcda_variation::montecarlo;
use lcda_variation::weights::WeightPerturber;
use lcda_variation::VariationConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Tensor substrate: a CIFAR-sized conv layer forward pass.
    let mut rng = SeedRng::new(0);
    let geom = ConvGeometry::new(32, 32, 32, 3, 1, 1).unwrap();
    let params = Conv2dParams::new(geom, 32).unwrap();
    let input = Tensor::from_vec(
        Shape::d4(1, 32, 32, 32),
        (0..32 * 32 * 32).map(|_| rng.uniform(-1.0, 1.0)).collect(),
    )
    .unwrap();
    let weight = Tensor::from_vec(
        params.weight_shape(),
        (0..32 * 288).map(|_| rng.uniform(-0.1, 0.1)).collect(),
    )
    .unwrap();
    let bias = Tensor::zeros(Shape::d1(32));
    c.bench_function("tensor/conv2d_32x32x32_k3", |b| {
        b.iter(|| black_box(conv2d_forward(&input, &weight, &bias, &params).unwrap().0))
    });

    // NeuroSim substrate: mapping and whole-chip evaluation.
    let chip = Chip::new(ChipConfig::isaac_default()).unwrap();
    let layer = LayerWorkload::conv(64, 16, 16, 128, 3, 1, 1).unwrap();
    c.bench_function("neurosim/map_layer", |b| {
        b.iter(|| {
            black_box(LayerMapping::map(&layer, &chip.config().xbar, Precision::int8()).unwrap())
        })
    });
    let net = reference_network();
    c.bench_function("neurosim/evaluate_reference_chip", |b| {
        b.iter(|| black_box(chip.evaluate(&net).unwrap().energy_pj))
    });

    // Variation substrate: perturbing a weight buffer + MC statistics.
    let perturber = WeightPerturber::new(VariationConfig::rram_moderate(), 1.0);
    c.bench_function("variation/perturb_64k_weights", |b| {
        let mut w = vec![0.25f32; 65536];
        b.iter(|| {
            perturber.perturb(&mut w, 7);
            black_box(w[0])
        })
    });
    c.bench_function("variation/mc_run_64_trials", |b| {
        b.iter(|| black_box(montecarlo::run(64, 1, |t, s| (t as f32) + (s % 7) as f32)))
    });

    // LLM substrate: render the Algorithm-1 prompt and parse a response.
    let choices = DesignChoices::nacim_default();
    let history: Vec<HistoryEntry> = (0..20)
        .map(|i| HistoryEntry {
            design: lcda_llm::design::CandidateDesign::reference(),
            performance: i as f64 / 20.0,
        })
        .collect();
    let builder = PromptBuilder::new(&choices);
    c.bench_function("llm/render_prompt_20_history", |b| {
        b.iter(|| black_box(builder.render(&history).len()))
    });
    let response = "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] | hw: [128,8,2,rram]";
    c.bench_function("llm/parse_response", |b| {
        b.iter(|| black_box(parse_design(response, &choices).unwrap()))
    });

    // Core: one surrogate evaluation.
    let space = DesignSpace::nacim_cifar10();
    let mut surrogate = SurrogateEvaluator::new(space.clone(), 0);
    let d = space.reference_design();
    c.bench_function("core/surrogate_accuracy", |b| {
        b.iter(|| black_box(surrogate.accuracy(&d).unwrap()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
