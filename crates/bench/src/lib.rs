//! # lcda-bench
//!
//! The experiment harness that regenerates every figure of the LCDA paper
//! plus the repository's own ablations. Each experiment is a pure
//! function from a seed to a data structure with a text renderer, so the
//! same code backs both the `cargo run -p lcda-bench --bin figN` binaries
//! (which print the series the paper plots) and the Criterion benches
//! (which time the underlying searches).
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | FIG2 | accuracy-energy scatter, LCDA vs NACIM | [`experiments::fig2`] |
//! | FIG3 | reward-vs-episode curves (a: 1–20, b: 21–500) | [`experiments::fig3`] |
//! | FIG4 | accuracy-latency scatter, LCDA falls short | [`experiments::fig4`] |
//! | FIG5 | LCDA vs LCDA-naive ablation | [`experiments::fig5`] |
//! | SPEEDUP | the 25× episodes-to-quality headline | [`experiments::speedup_table`] |
//! | KERNEL-UTIL | §IV-B crossbar-utilization mechanism | [`experiments::kernel_utilization`] |
//! | ABL | repo ablations (noise injection, personas, optimizers) | [`experiments::ablation_suite`] |

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod render;
