//! Plain-text renderers for the experiment payloads: scatter tables,
//! ASCII trade-off plots and the speedup table.

use crate::experiments::{AblationRow, Fig3Data, KernelUtilRow, ScatterData};
use lcda_core::analysis::SpeedupReport;
use std::fmt::Write as _;

/// Renders a two-series scatter as a table plus a coarse ASCII plot.
pub fn scatter(data: &ScatterData, cost_label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} ({} pts, best {:+.3})   vs   {} ({} pts, best {:+.3})",
        data.lcda_name,
        data.lcda.len(),
        data.lcda_best,
        data.baseline_name,
        data.baseline.len(),
        data.baseline_best
    );
    let _ = writeln!(out, "\n{:>10}  {:>14}  series", "accuracy", cost_label);
    let mut all: Vec<(f64, f64, &str)> = data
        .lcda
        .iter()
        .map(|&(a, c)| (a, c, data.lcda_name.as_str()))
        .chain(
            data.baseline
                .iter()
                .map(|&(a, c)| (a, c, data.baseline_name.as_str())),
        )
        .collect();
    all.sort_by(|x, y| x.1.total_cmp(&y.1));
    for (a, c, s) in &all {
        let _ = writeln!(out, "{a:>10.3}  {c:>14.4e}  {s}");
    }
    out.push('\n');
    out.push_str(&ascii_plot(data));
    out
}

/// A coarse ASCII scatter plot (accuracy up, cost right); `■` = LCDA
/// series, `·` = baseline, `◆` = both in the same cell.
pub fn ascii_plot(data: &ScatterData) -> String {
    const W: usize = 64;
    const H: usize = 16;
    let all_costs: Vec<f64> = data
        .lcda
        .iter()
        .chain(&data.baseline)
        .map(|p| p.1)
        .collect();
    let all_accs: Vec<f64> = data
        .lcda
        .iter()
        .chain(&data.baseline)
        .map(|p| p.0)
        .collect();
    if all_costs.is_empty() {
        return "(no valid designs to plot)\n".to_string();
    }
    let (cmin, cmax) = bounds(&all_costs);
    let (amin, amax) = bounds(&all_accs);
    let mut grid = vec![vec![' '; W]; H];
    let mut place = |pts: &[(f64, f64)], mark: char| {
        for &(a, c) in pts {
            let x = norm(c, cmin, cmax) * (W - 1) as f64;
            let y = (1.0 - norm(a, amin, amax)) * (H - 1) as f64;
            let cell = &mut grid[y as usize][x as usize];
            *cell = match (*cell, mark) {
                (' ', m) => m,
                (existing, m) if existing == m => m,
                _ => '◆',
            };
        }
    };
    place(&data.baseline, '·');
    place(&data.lcda, '■');
    let mut out = String::new();
    let _ = writeln!(
        out,
        "accuracy {amax:.2} ┐  (■ {}, · {})",
        data.lcda_name, data.baseline_name
    );
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "             │{line}");
    }
    let _ = writeln!(out, "    {amin:.2} └{}", "─".repeat(W));
    let _ = writeln!(
        out,
        "               {cmin:.2e} → {cmax:.2e} (lower cost = left = better)"
    );
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        (lo - 1.0, hi + 1.0)
    } else {
        (lo, hi)
    }
}

fn norm(x: f64, lo: f64, hi: f64) -> f64 {
    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
}

/// Renders the two Fig. 3 panels.
pub fn fig3(data: &Fig3Data) -> String {
    let mut out = String::new();
    let (la, na) = data.panel_a();
    let _ = writeln!(out, "panel (a) — episodes 1–20, per-episode reward:");
    let _ = writeln!(out, "{:>7}  {:>10}  {:>10}", "episode", "LCDA", "NACIM");
    for (i, (l, n)) in la.iter().zip(&na).enumerate() {
        let _ = writeln!(out, "{:>7}  {l:>+10.3}  {n:>+10.3}", i + 1);
    }
    let (lb, nb) = data.panel_b();
    let _ = writeln!(
        out,
        "\npanel (b) — episodes 21–{}, running best (LCDA projected at its 20-episode max):",
        20 + nb.len()
    );
    let _ = writeln!(out, "{:>7}  {:>10}  {:>10}", "episode", "LCDA", "NACIM");
    for (i, (l, n)) in lb.iter().zip(&nb).enumerate() {
        if (i + 1) % 40 == 0 || i == 0 || i + 1 == nb.len() {
            let _ = writeln!(out, "{:>7}  {l:>+10.3}  {n:>+10.3}", 21 + i);
        }
    }
    out
}

/// Renders the speedup table.
pub fn speedup_table(reports: &[SpeedupReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6}  {:>10}  {:>14}  {:>16}  {:>9}",
        "seed#", "target", "LCDA episodes", "NACIM episodes", "speedup"
    );
    for (i, r) in reports.iter().enumerate() {
        let baseline = match r.baseline_episodes {
            Some(n) => format!("{n}"),
            None => format!(">{}", 500),
        };
        let _ = writeln!(
            out,
            "{:>6}  {:>+10.3}  {:>14}  {:>16}  {:>8.1}x",
            i, r.target, r.fast_episodes, baseline, r.speedup_lower_bound
        );
    }
    let gm = geometric_mean(reports.iter().map(|r| r.speedup_lower_bound));
    let _ = writeln!(
        out,
        "\ngeometric-mean speedup: {gm:.1}x  (paper reports 25x)"
    );
    out
}

fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

/// Renders the kernel-utilization mechanism table.
pub fn kernel_util(rows: &[KernelUtilRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>5} {:>6} {:>7} {:>6} {:>12} {:>12} {:>9}",
        "c_in", "k", "rows", "groups", "util", "latency(ns)", "energy(pJ)", "var-pen"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>5} {:>5} {:>6} {:>7} {:>5.1}% {:>12.0} {:>12.3e} {:>9.4}",
            r.c_in,
            r.kernel,
            r.rows_needed,
            r.row_groups,
            r.utilization * 100.0,
            r.latency_ns,
            r.energy_pj,
            r.variation_penalty
        );
    }
    out
}

/// Renders the ablation table.
pub fn ablations(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<38} {:>10} {:>10} {:>9}",
        "configuration", "best", "mean", "episodes"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<38} {:>+10.3} {:>+10.3} {:>9}",
            r.name, r.best_reward, r.mean_reward, r.episodes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ScatterData;

    fn sample() -> ScatterData {
        ScatterData {
            lcda_name: "LCDA".into(),
            lcda: vec![(0.8, 1e7), (0.7, 5e6)],
            lcda_best: 0.5,
            baseline_name: "NACIM".into(),
            baseline: vec![(0.6, 2e6), (0.5, 1e6)],
            baseline_best: 0.4,
        }
    }

    #[test]
    fn scatter_renders_all_points() {
        let s = scatter(&sample(), "energy(pJ)");
        assert!(s.matches("LCDA").count() >= 3);
        assert!(s.contains("0.800"));
        assert!(s.contains("NACIM"));
    }

    #[test]
    fn ascii_plot_handles_empty() {
        let mut d = sample();
        d.lcda.clear();
        d.baseline.clear();
        assert!(ascii_plot(&d).contains("no valid designs"));
    }

    #[test]
    fn ascii_plot_has_marks() {
        let p = ascii_plot(&sample());
        assert!(p.contains('■'));
        assert!(p.contains('·'));
    }

    #[test]
    fn geometric_mean_basics() {
        let gm = geometric_mean([4.0, 16.0].into_iter());
        assert!((gm - 8.0).abs() < 1e-9);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
    }
}
