//! Experiment definitions, one per paper artifact.

use lcda_core::analysis::{speedup, RewardCurve, SpeedupReport};
use lcda_core::backend::CimBackend;
use lcda_core::evaluate::AccuracyEvaluator;
use lcda_core::space::DesignSpace;
use lcda_core::surrogate::SurrogateEvaluator;
use lcda_core::{CoDesign, CoDesignConfig, Objective, OptimizerSpec, Outcome};
use lcda_neurosim::chip::Chip;
use lcda_neurosim::mapper::{LayerMapping, LayerWorkload, Precision};
use serde::{Deserialize, Serialize};

/// LCDA's episode budget in the paper.
pub const LCDA_EPISODES: u32 = 20;

/// NACIM's episode budget in the paper.
pub const NACIM_EPISODES: u32 = 500;

fn cfg(objective: Objective, episodes: u32, seed: u64) -> CoDesignConfig {
    CoDesignConfig::builder(objective)
        .episodes(episodes)
        .seed(seed)
        .build()
}

fn run(spec: OptimizerSpec, space: DesignSpace, config: CoDesignConfig) -> CoDesign {
    CoDesign::builder(space, config)
        .optimizer(spec)
        .build()
        .expect("valid config")
}

/// Two scatter series plus their best rewards — the payload of Figs. 2,
/// 4 and 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterData {
    /// Label of the first series (LCDA variant).
    pub lcda_name: String,
    /// `(accuracy, cost)` points of the LCDA run.
    pub lcda: Vec<(f64, f64)>,
    /// Best reward of the LCDA run.
    pub lcda_best: f64,
    /// Label of the comparison series.
    pub baseline_name: String,
    /// `(accuracy, cost)` points of the comparison run.
    pub baseline: Vec<(f64, f64)>,
    /// Best reward of the comparison run.
    pub baseline_best: f64,
}

fn outcome_points(outcome: &Outcome, objective: Objective) -> Vec<(f64, f64)> {
    match objective {
        Objective::AccuracyEnergy => outcome.accuracy_energy_points(),
        Objective::AccuracyLatency => outcome.accuracy_latency_points(),
    }
}

/// FIG2 — §IV-A: accuracy-energy trade-offs of LCDA (20 episodes) vs the
/// NACIM RL baseline (500 episodes), reward Eq. 1.
pub fn fig2(seed: u64) -> ScatterData {
    let space = DesignSpace::nacim_cifar10();
    let obj = Objective::AccuracyEnergy;
    let lcda = run(
        OptimizerSpec::ExpertLlm,
        space.clone(),
        cfg(obj, LCDA_EPISODES, seed),
    )
    .run()
    .expect("run completes");
    let nacim = run(OptimizerSpec::Rl, space, cfg(obj, NACIM_EPISODES, seed))
        .run()
        .expect("run completes");
    ScatterData {
        lcda_name: "LCDA".into(),
        lcda: outcome_points(&lcda, obj),
        lcda_best: lcda.best.reward,
        baseline_name: "NACIM".into(),
        baseline: outcome_points(&nacim, obj),
        baseline_best: nacim.best.reward,
    }
}

/// The payload of Fig. 3: per-episode reward curves for both methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Data {
    /// LCDA's curve (20 episodes).
    pub lcda: RewardCurve,
    /// NACIM's curve (500 episodes).
    pub nacim: RewardCurve,
}

impl Fig3Data {
    /// Panel (a): rewards of episodes 1–20 for both methods.
    pub fn panel_a(&self) -> (Vec<f64>, Vec<f64>) {
        (
            self.lcda.rewards.clone(),
            self.nacim.rewards[..20.min(self.nacim.rewards.len())].to_vec(),
        )
    }

    /// Panel (b): episodes 21–500; LCDA projected at its first-20 maximum
    /// exactly as the paper does.
    pub fn panel_b(&self) -> (Vec<f64>, Vec<f64>) {
        let total = self.nacim.rewards.len();
        let lcda_projected = self.lcda.project_to(total)[20.min(total)..].to_vec();
        let nacim_tail = self.nacim.best_so_far[20.min(total)..].to_vec();
        (lcda_projected, nacim_tail)
    }
}

/// FIG3 — §IV-A: reward vs episode, with LCDA's 20-episode maximum
/// projected into episodes 21–500.
pub fn fig3(seed: u64) -> Fig3Data {
    let space = DesignSpace::nacim_cifar10();
    let obj = Objective::AccuracyEnergy;
    let lcda = run(
        OptimizerSpec::ExpertLlm,
        space.clone(),
        cfg(obj, LCDA_EPISODES, seed),
    )
    .run()
    .expect("run completes");
    let nacim = run(OptimizerSpec::Rl, space, cfg(obj, NACIM_EPISODES, seed))
        .run()
        .expect("run completes");
    Fig3Data {
        lcda: RewardCurve::from_outcome(&lcda),
        nacim: RewardCurve::from_outcome(&nacim),
    }
}

/// FIG4 — §IV-B: accuracy-latency trade-offs, reward Eq. 2 — the
/// objective where the pretrained LLM's kernel-size misconceptions make
/// LCDA fall short of NACIM.
pub fn fig4(seed: u64) -> ScatterData {
    let space = DesignSpace::nacim_cifar10();
    let obj = Objective::AccuracyLatency;
    let lcda = run(
        OptimizerSpec::ExpertLlm,
        space.clone(),
        cfg(obj, LCDA_EPISODES, seed),
    )
    .run()
    .expect("run completes");
    let nacim = run(OptimizerSpec::Rl, space, cfg(obj, NACIM_EPISODES, seed))
        .run()
        .expect("run completes");
    ScatterData {
        lcda_name: "LCDA".into(),
        lcda: outcome_points(&lcda, obj),
        lcda_best: lcda.best.reward,
        baseline_name: "NACIM".into(),
        baseline: outcome_points(&nacim, obj),
        baseline_best: nacim.best.reward,
    }
}

/// FIG5 — §IV-C: the ablation. Same budget, same evaluators; the only
/// difference is the prompt framing and the model's knowledge.
pub fn fig5(seed: u64) -> ScatterData {
    let space = DesignSpace::nacim_cifar10();
    let obj = Objective::AccuracyEnergy;
    let expert = run(
        OptimizerSpec::ExpertLlm,
        space.clone(),
        cfg(obj, LCDA_EPISODES, seed),
    )
    .run()
    .expect("run completes");
    let naive = run(
        OptimizerSpec::NaiveLlm,
        space,
        cfg(obj, LCDA_EPISODES, seed),
    )
    .run()
    .expect("run completes");
    ScatterData {
        lcda_name: "LCDA".into(),
        lcda: outcome_points(&expert, obj),
        lcda_best: expert.best.reward,
        baseline_name: "LCDA-naive".into(),
        baseline: outcome_points(&naive, obj),
        baseline_best: naive.best.reward,
    }
}

/// SPEEDUP — the §IV-A headline, measured across seeds: episodes NACIM
/// needs to reach within `tolerance` of LCDA's 20-episode best.
pub fn speedup_table(seeds: &[u64], tolerance: f64) -> Vec<SpeedupReport> {
    let space = DesignSpace::nacim_cifar10();
    let obj = Objective::AccuracyEnergy;
    seeds
        .iter()
        .map(|&seed| {
            let lcda = run(
                OptimizerSpec::ExpertLlm,
                space.clone(),
                cfg(obj, LCDA_EPISODES, seed),
            )
            .run()
            .expect("run completes");
            let nacim = run(
                OptimizerSpec::Rl,
                space.clone(),
                cfg(obj, NACIM_EPISODES, seed),
            )
            .run()
            .expect("run completes");
            speedup(
                &RewardCurve::from_outcome(&lcda),
                &RewardCurve::from_outcome(&nacim),
                tolerance,
            )
        })
        .collect()
}

/// One row of the §IV-B kernel-utilization mechanism table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelUtilRow {
    /// Kernel size.
    pub kernel: u32,
    /// Input channels of the probed layer.
    pub c_in: u32,
    /// Crossbar rows the layer occupies.
    pub rows_needed: u32,
    /// Row groups after tiling onto 128-row arrays.
    pub row_groups: u32,
    /// Cell utilization of the allocated arrays.
    pub utilization: f64,
    /// Whole-layer latency, ns.
    pub latency_ns: f64,
    /// Whole-layer energy, pJ.
    pub energy_pj: f64,
    /// Monte-Carlo accuracy cost of this kernel at reference channels
    /// (surrogate penalty, RRAM corner).
    pub variation_penalty: f64,
}

/// KERNEL-UTIL — the mechanism behind Fig. 4's failure: crossbar
/// utilization is a *non-monotone* function of kernel size (it depends on
/// how `k²·c_in` packs into physical rows), and the accuracy cost of
/// device variation *grows* with kernel size. Both facts contradict the
/// pretrained model's general-hardware intuitions.
pub fn kernel_utilization() -> Vec<KernelUtilRow> {
    let space = DesignSpace::nacim_cifar10();
    let chip_cfg = CimBackend::new(space.clone())
        .chip_config(&space.reference_design())
        .expect("reference converts");
    let chip = Chip::new(chip_cfg).expect("valid chip");
    let surrogate = SurrogateEvaluator::new(space.clone(), 0);
    let mut rows = Vec::new();
    for &c_in in &[16u32, 24, 64] {
        for &kernel in &[1u32, 3, 5, 7] {
            let layer =
                LayerWorkload::conv(c_in, 16, 16, 64, kernel, 1, kernel / 2).expect("valid layer");
            let mapping = LayerMapping::map(&layer, &chip.config().xbar, Precision::int8())
                .expect("mappable");
            let report = chip.evaluate(&[layer]).expect("evaluates");
            let mut d = space.reference_design();
            for conv in &mut d.conv {
                conv.kernel = kernel;
            }
            let penalty = surrogate.variation_penalty(&d).expect("in space");
            rows.push(KernelUtilRow {
                kernel,
                c_in,
                rows_needed: mapping.rows_needed,
                row_groups: mapping.row_groups,
                utilization: mapping.utilization,
                latency_ns: report.latency_ns,
                energy_pj: report.energy_pj,
                variation_penalty: penalty,
            });
        }
    }
    rows
}

/// One ablation result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration under test.
    pub name: String,
    /// Best reward achieved.
    pub best_reward: f64,
    /// Mean reward across episodes.
    pub mean_reward: f64,
    /// Episode budget used.
    pub episodes: u32,
}

fn ablation_row(name: &str, outcome: &Outcome) -> AblationRow {
    AblationRow {
        name: name.to_string(),
        best_reward: outcome.best.reward,
        mean_reward: outcome.history.iter().map(|r| r.reward).sum::<f64>()
            / outcome.history.len() as f64,
        episodes: outcome.history.len() as u32,
    }
}

/// ABL — the repository's own ablation sweep over DESIGN.md's design
/// choices: every optimizer at matched budgets, the three LLM personas,
/// and noise-injection training on/off.
pub fn ablation_suite(seed: u64) -> Vec<AblationRow> {
    let space = DesignSpace::nacim_cifar10();
    let obj = Objective::AccuracyEnergy;
    let mut rows = Vec::new();

    let runs: Vec<(&str, CoDesign)> = vec![
        (
            "lcda/pretrained @20",
            run(
                OptimizerSpec::ExpertLlm,
                space.clone(),
                cfg(obj, LCDA_EPISODES, seed),
            ),
        ),
        (
            "lcda/fine-tuned @20",
            run(
                OptimizerSpec::FinetunedLlm,
                space.clone(),
                cfg(obj, LCDA_EPISODES, seed),
            ),
        ),
        (
            "lcda/adaptive @20",
            run(
                OptimizerSpec::AdaptiveLlm,
                space.clone(),
                cfg(obj, LCDA_EPISODES, seed),
            ),
        ),
        (
            "lcda/naive @20",
            run(
                OptimizerSpec::NaiveLlm,
                space.clone(),
                cfg(obj, LCDA_EPISODES, seed),
            ),
        ),
        (
            "nacim-rl @20",
            run(
                OptimizerSpec::Rl,
                space.clone(),
                cfg(obj, LCDA_EPISODES, seed),
            ),
        ),
        (
            "nacim-rl @500",
            run(
                OptimizerSpec::Rl,
                space.clone(),
                cfg(obj, NACIM_EPISODES, seed),
            ),
        ),
        (
            "genetic @500",
            run(
                OptimizerSpec::Genetic,
                space.clone(),
                cfg(obj, NACIM_EPISODES, seed),
            ),
        ),
        (
            "random @500",
            run(
                OptimizerSpec::Random,
                space.clone(),
                cfg(obj, NACIM_EPISODES, seed),
            ),
        ),
    ];
    for (name, mut run) in runs {
        rows.push(ablation_row(name, &run.run().expect("run completes")));
    }

    // Write-verify ablation (SWIM, the paper's reference [5]): the same
    // LCDA search on a platform whose cells are programmed with a verify
    // loop — variation severity drops, so accuracy (and reward) rise.
    let wv_space = space
        .clone()
        .with_write_verify(lcda_variation::WriteVerifyConfig::standard());
    let mut wv_run = run(
        OptimizerSpec::ExpertLlm,
        wv_space,
        cfg(obj, LCDA_EPISODES, seed),
    );
    rows.push(ablation_row(
        "lcda/pretrained @20 + write-verify",
        &wv_run.run().expect("run completes"),
    ));

    // Noise-injection ablation: accuracy of the reference design with and
    // without the paper's §III-C training method.
    let reference = space.reference_design();
    let with_ni = SurrogateEvaluator::new(space.clone(), seed)
        .accuracy(&reference)
        .expect("in space");
    let without_ni = SurrogateEvaluator::new(space.clone(), seed)
        .without_noise_injection()
        .accuracy(&reference)
        .expect("in space");
    rows.push(AblationRow {
        name: "reference acc, noise-injection ON".into(),
        best_reward: with_ni,
        mean_reward: with_ni,
        episodes: 0,
    });
    rows.push(AblationRow {
        name: "reference acc, noise-injection OFF".into(),
        best_reward: without_ni,
        mean_reward: without_ni,
        episodes: 0,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shapes_hold_quickly() {
        // Cheap smoke test of the full experiment path: the naive run must
        // lose to the expert run.
        let d = fig5(9);
        assert!(d.lcda_best > d.baseline_best);
        assert!(!d.lcda.is_empty());
    }

    #[test]
    fn kernel_util_is_nonmonotone_somewhere() {
        let rows = kernel_utilization();
        assert_eq!(rows.len(), 12);
        // For at least one channel count, utilization is non-monotone in k
        // (the §IV-B surprise).
        let mut nonmonotone = false;
        for &c in &[16u32, 24, 64] {
            let utils: Vec<f64> = rows
                .iter()
                .filter(|r| r.c_in == c)
                .map(|r| r.utilization)
                .collect();
            let increasing = utils.windows(2).all(|w| w[1] >= w[0]);
            let decreasing = utils.windows(2).all(|w| w[1] <= w[0]);
            if !increasing && !decreasing {
                nonmonotone = true;
            }
        }
        assert!(
            nonmonotone,
            "utilization should be non-monotone in k somewhere"
        );
        // And the variation penalty grows with kernel size.
        let p: Vec<f64> = rows
            .iter()
            .filter(|r| r.c_in == 16)
            .map(|r| r.variation_penalty)
            .collect();
        assert!(p.windows(2).all(|w| w[1] >= w[0]));
    }
}

/// One row of the device-technology sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechSweepRow {
    /// Technology name.
    pub tech: String,
    /// Reference-network energy, pJ.
    pub energy_pj: f64,
    /// Sequential single-image latency, ns.
    pub latency_ns: f64,
    /// Pipelined (steady-state) latency, ns.
    pub pipelined_latency_ns: f64,
    /// Chip area, mm².
    pub area_mm2: f64,
    /// Leakage, µW.
    pub leakage_uw: f64,
    /// Surrogate Monte-Carlo accuracy of the reference design on this
    /// technology's variation corner.
    pub accuracy: f64,
    /// Share of dynamic energy burned in the ADCs.
    pub adc_energy_share: f64,
}

/// TECH — sweep the reference design across every supported memory
/// technology (RRAM / FeFET / PCM / STT-MRAM / SRAM): the CiM-vs-SRAM
/// story plus the accuracy cost of each technology's variation corner.
pub fn tech_sweep() -> Vec<TechSweepRow> {
    use lcda_neurosim::chip::LatencyMode;
    use lcda_neurosim::device::DeviceTech;

    // A space whose tech menu covers every technology, so the surrogate
    // can score each corner.
    let mut space = DesignSpace::nacim_cifar10();
    space.choices.tech_options = DeviceTech::ALL
        .iter()
        .map(|t| t.name().to_string())
        .collect();
    let mut surrogate = SurrogateEvaluator::new(space.clone(), 0);

    let mut rows = Vec::new();
    for tech in DeviceTech::ALL {
        let mut design = space.reference_design();
        design.hw.tech = tech.name().to_string();
        // STT-MRAM and SRAM store a single bit per cell.
        if tech.params().max_cell_bits < design.hw.cell_bits {
            design.hw.cell_bits = tech.params().max_cell_bits;
        }
        // Keep the cell choice inside the space's options.
        if !space.choices.cell_options.contains(&design.hw.cell_bits) {
            space.choices.cell_options.push(design.hw.cell_bits);
            surrogate = SurrogateEvaluator::new(space.clone(), 0);
        }

        let cim = CimBackend::new(space.clone());
        let mut cfg = cim.chip_config(&design).expect("valid tech");
        let seq = Chip::new(cfg).expect("valid chip");
        cfg.latency_mode = LatencyMode::Pipelined;
        let pipe = Chip::new(cfg).expect("valid chip");
        let layers = cim.lower(&design).expect("reference converts");
        let rs = seq.evaluate(&layers).expect("evaluates");
        let rp = pipe.evaluate(&layers).expect("evaluates");
        let accuracy = surrogate.accuracy(&design).expect("in space");
        rows.push(TechSweepRow {
            tech: tech.name().to_string(),
            energy_pj: rs.energy_pj,
            latency_ns: rs.latency_ns,
            pipelined_latency_ns: rp.latency_ns,
            area_mm2: rs.area_mm2,
            leakage_uw: rs.leakage_uw,
            accuracy,
            adc_energy_share: rs.energy_breakdown.adc_pj / rs.energy_pj,
        });
    }
    rows
}

#[cfg(test)]
mod tech_sweep_tests {
    use super::*;

    #[test]
    fn sweep_covers_all_techs_with_sane_values() {
        let rows = tech_sweep();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.energy_pj > 0.0, "{}", r.tech);
            assert!(r.pipelined_latency_ns <= r.latency_ns + 1e-9, "{}", r.tech);
            assert!(r.accuracy > 0.3 && r.accuracy < 1.0, "{}", r.tech);
            assert!(r.adc_energy_share > 0.0 && r.adc_energy_share < 1.0);
        }
        let get = |name: &str| rows.iter().find(|r| r.tech == name).unwrap();
        // SRAM: much larger cells, real leakage, but an ideal variation
        // corner → best accuracy.
        assert!(get("sram").area_mm2 > get("rram").area_mm2 * 2.0);
        assert!(get("sram").leakage_uw > get("rram").leakage_uw);
        assert!(get("sram").accuracy > get("rram").accuracy);
        // PCM has the harshest corner of the NVMs.
        assert!(get("pcm").accuracy < get("fefet").accuracy);
    }
}

/// One row of the retention study: Monte-Carlo accuracy of a trained
/// network read at increasing times after programming.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetentionRow {
    /// Drift corner name.
    pub corner: String,
    /// Time since programming, seconds.
    pub elapsed_seconds: f64,
    /// Mean Monte-Carlo accuracy.
    pub accuracy: f64,
}

/// RETENTION — conductance drift over time: trains one small network and
/// reads it back at increasing ages under RRAM-like and PCM-like drift
/// corners. Uses the *real* training/evaluation path (not the surrogate).
pub fn retention_study() -> Vec<RetentionRow> {
    use lcda_dnn::arch::Architecture;
    use lcda_dnn::dataset::SynthCifar;
    use lcda_dnn::mc_eval::{mc_accuracy, McEvalConfig};
    use lcda_dnn::trainer::{TrainConfig, Trainer};
    use lcda_variation::{RetentionConfig, VariationConfig};

    let data = SynthCifar::generate_classes(96, 8, 4, 77).expect("valid dataset");
    let net = Architecture::tiny_test().build(77).expect("valid arch");
    let mut cfg = TrainConfig::fast_test();
    cfg.epochs = 10;
    let mut trainer = Trainer::new(net, cfg);
    trainer.fit(&data).expect("training succeeds");
    let mut net = trainer.into_network();

    let corners = [
        ("rram-drift", RetentionConfig::rram_like()),
        ("pcm-drift", RetentionConfig::pcm_like()),
    ];
    let hour = 3600.0;
    let times = [
        0.0,
        hour,
        24.0 * hour,
        30.0 * 24.0 * hour,
        365.0 * 24.0 * hour,
    ];
    let mut rows = Vec::new();
    for (name, retention) in corners {
        let variation = VariationConfig::rram_moderate().with_retention(retention);
        for &t in &times {
            let stats = mc_accuracy(
                &mut net,
                &data,
                &McEvalConfig {
                    trials: 6,
                    variation: variation.clone(),
                    seed: 7,
                    elapsed_seconds: t,
                    threads: 1,
                },
            )
            .expect("evaluation succeeds");
            rows.push(RetentionRow {
                corner: name.to_string(),
                elapsed_seconds: t,
                accuracy: f64::from(stats.mean),
            });
        }
    }
    rows
}

#[cfg(test)]
mod retention_tests {
    use super::*;

    #[test]
    fn retention_study_shapes() {
        let rows = retention_study();
        assert_eq!(rows.len(), 10);
        for corner in ["rram-drift", "pcm-drift"] {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.corner == corner)
                .map(|r| r.accuracy)
                .collect();
            // Fresh reads must be at least as good as year-old reads.
            assert!(
                series[0] >= *series.last().unwrap() - 1e-6,
                "{corner}: {series:?}"
            );
        }
        // The PCM corner drifts harder than the RRAM corner at one year.
        let at_year = |corner: &str| rows.iter().rfind(|r| r.corner == corner).unwrap().accuracy;
        assert!(at_year("pcm-drift") <= at_year("rram-drift") + 0.05);
    }
}
