//! Regenerates Fig. 4: accuracy-latency trade-offs (reward Eq. 2) — the
//! experiment where LCDA falls short because of GPT-4's kernel-size
//! misconceptions on CiM hardware.

use lcda_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!("FIG 4 — accuracy vs latency (seed {seed})\n");
    let data = experiments::fig4(seed);
    print!("{}", render::scatter(&data, "latency(ns)"));
    let min = |pts: &[(f64, f64)]| pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    println!(
        "\npaper shape check: LCDA struggles to deliver low latency (min {:.0} ns) \
         while NACIM reaches {:.0} ns; LCDA's candidates keep the accuracy edge.",
        min(&data.lcda),
        min(&data.baseline)
    );
}
