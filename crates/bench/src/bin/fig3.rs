//! Regenerates Fig. 3: rewards per episode; panel (a) episodes 1–20,
//! panel (b) episodes 21–500 with LCDA projected at its 20-episode max.

use lcda_bench::{experiments, render};
use lcda_core::analysis::speedup;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!("FIG 3 — reward vs episode (seed {seed})\n");
    let data = experiments::fig3(seed);
    print!("{}", render::fig3(&data));
    let rep = speedup(&data.lcda, &data.nacim, 0.02);
    match rep.baseline_episodes {
        Some(n) => println!(
            "\nNACIM reaches LCDA's 20-episode quality at episode {n} → ~{:.0}x speedup (paper: 25x).",
            rep.speedup_lower_bound
        ),
        None => println!(
            "\nNACIM never reaches LCDA's 20-episode quality in 500 episodes (≥{:.0}x speedup; paper: 25x).",
            rep.speedup_lower_bound
        ),
    }
}
