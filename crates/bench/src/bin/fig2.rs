//! Regenerates Fig. 2: accuracy-energy trade-offs, LCDA (20 episodes,
//! blue/■) vs NACIM RL (500 episodes, orange/·), reward Eq. 1.

use lcda_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!("FIG 2 — accuracy vs energy (seed {seed})\n");
    let data = experiments::fig2(seed);
    print!("{}", render::scatter(&data, "energy(pJ)"));
    println!(
        "\npaper shape check: comparable best rewards (LCDA {:+.3} vs NACIM {:+.3}), \
         LCDA keeps high accuracy across the energy spectrum.",
        data.lcda_best, data.baseline_best
    );
}
