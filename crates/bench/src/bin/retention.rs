//! Conductance retention over time: a trained network read back at
//! increasing ages under RRAM-like and PCM-like drift corners (real
//! training + Monte-Carlo path, tiny model).

use lcda_bench::experiments::retention_study;

fn human_time(secs: f64) -> String {
    if secs == 0.0 {
        "fresh".to_string()
    } else if secs < 86400.0 {
        format!("{:.0}h", secs / 3600.0)
    } else if secs < 86400.0 * 32.0 {
        format!("{:.0}d", secs / 86400.0)
    } else {
        format!("{:.0}mo", secs / (86400.0 * 30.0))
    }
}

fn main() {
    println!("RETENTION — MC accuracy vs time since programming\n");
    println!("{:<12} {:>8} {:>10}", "corner", "age", "accuracy");
    for r in retention_study() {
        println!(
            "{:<12} {:>8} {:>10.3}",
            r.corner,
            human_time(r.elapsed_seconds),
            r.accuracy
        );
    }
    println!(
        "\nPower-law conductance drift (g ∝ t^-ν) erodes accuracy over months; \
         the PCM-like corner (ν=0.05) decays faster than the RRAM-like one \
         (ν=0.01) — the refresh-scheduling trade CiM deployments manage."
    );
}
