//! Regenerates the §IV-B mechanism table: crossbar utilization, latency,
//! energy and variation penalty as functions of kernel size — the facts
//! GPT-4's general-hardware intuition gets wrong.

use lcda_bench::{experiments, render};

fn main() {
    println!("KERNEL-UTIL — §IV-B mechanism (128x128 arrays, 2-bit cells, int8)\n");
    let rows = experiments::kernel_utilization();
    print!("{}", render::kernel_util(&rows));
    println!(
        "\nutilization is non-monotone in k (depends on how k²·c_in packs into 128-row \
         arrays) and the variation penalty grows with k — so neither \"smaller kernels \
         are faster\" nor \"larger kernels are more accurate\" survives on CiM hardware."
    );
}
