//! Regenerates Fig. 5: the knowledge ablation — LCDA vs LCDA-naive
//! (prompts without the co-design framing), reward Eq. 1.

use lcda_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!("FIG 5 — LCDA vs LCDA-naive, accuracy vs energy (seed {seed})\n");
    let data = experiments::fig5(seed);
    print!("{}", render::scatter(&data, "energy(pJ)"));
    println!(
        "\npaper shape check: without co-design framing the naive run fails to find \
         efficient designs (best {:+.3} vs LCDA's {:+.3}).",
        data.baseline_best, data.lcda_best
    );
}
