//! Sweeps the reference design across every supported memory technology:
//! the CiM-vs-SRAM trade (density and leakage vs variation-free
//! accuracy), the ADC energy dominance, and the pipelined-vs-sequential
//! latency gap.

use lcda_bench::experiments::tech_sweep;

fn main() {
    println!("TECH SWEEP — ISAAC reference network on each memory technology\n");
    println!(
        "{:<9} {:>12} {:>12} {:>12} {:>9} {:>10} {:>9} {:>8}",
        "tech", "energy(pJ)", "lat(ns)", "pipe(ns)", "area", "leak(uW)", "acc", "adc%"
    );
    for r in tech_sweep() {
        println!(
            "{:<9} {:>12.3e} {:>12.0} {:>12.0} {:>9.2} {:>10.1} {:>9.3} {:>7.1}%",
            r.tech,
            r.energy_pj,
            r.latency_ns,
            r.pipelined_latency_ns,
            r.area_mm2,
            r.leakage_uw,
            r.accuracy,
            r.adc_energy_share * 100.0
        );
    }
    println!(
        "\nNVM crossbars win on density and leakage; SRAM wins on accuracy (no analog \
         variation) at 6-7x the energy. On the NVM technologies the ADCs dominate \
         dynamic energy — the lever the low-energy designs in Fig. 2 pull."
    );
}
