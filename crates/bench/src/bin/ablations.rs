//! Runs the repository's ablation sweep: all optimizers at matched
//! budgets, the three LLM personas, and noise-injection training on/off.

use lcda_bench::{experiments, render};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    println!("ABLATIONS (seed {seed}, objective accuracy-energy)\n");
    let rows = experiments::ablation_suite(seed);
    print!("{}", render::ablations(&rows));
}
