//! Regenerates the §IV-A headline: episodes-to-comparable-quality speedup
//! of LCDA over NACIM, across seeds.

use lcda_bench::{experiments, render};

fn main() {
    let seeds: Vec<u64> = (1..=5).collect();
    println!("SPEEDUP — NACIM episodes needed to reach within 0.02 of LCDA's 20-episode best\n");
    let reports = experiments::speedup_table(&seeds, 0.02);
    print!("{}", render::speedup_table(&reports));
}
