//! Concrete network layers with cached forward state and explicit
//! backward passes.

use crate::extra_layers::{BatchNorm2dLayer, DropoutLayer};
use crate::{DnnError, Result};
use lcda_tensor::init::Init;
use lcda_tensor::ops::{
    avgpool_global_backward, avgpool_global_forward, conv2d_backward, conv2d_forward, conv2d_infer,
    maxpool2_backward, maxpool2_forward, relu_backward, relu_forward, Conv2dParams, ConvGeometry,
};
use lcda_tensor::rng::SeedRng;
use lcda_tensor::{Shape, Tensor};

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient from the last backward pass.
    pub grad: Tensor,
}

impl Param {
    fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }
}

/// A 2-D convolution layer (weights stored in `(c_out, c_in·k²)` matrix
/// form, matching the crossbar mapping).
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    /// Convolution hyper-parameters.
    pub params: Conv2dParams,
    /// Kernel weights.
    pub weight: Param,
    /// Per-output-channel bias.
    pub bias: Param,
    cols_cache: Option<Tensor>,
}

impl Conv2dLayer {
    /// Creates the layer with He-initialized weights.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn new(geom: ConvGeometry, out_channels: usize, rng: &mut SeedRng) -> Result<Self> {
        let params = Conv2dParams::new(geom, out_channels).map_err(DnnError::from)?;
        let fan_in = geom.patch_rows();
        let weight = Init::HeNormal.tensor(params.weight_shape(), fan_in, out_channels, rng);
        let bias = Init::Zeros.tensor(Shape::d1(out_channels), fan_in, out_channels, rng);
        Ok(Conv2dLayer {
            params,
            weight: Param::new(weight),
            bias: Param::new(bias),
            cols_cache: None,
        })
    }
}

/// A fully-connected layer.
#[derive(Debug, Clone)]
pub struct LinearLayer {
    /// Weight matrix `(inputs, outputs)`.
    pub weight: Param,
    /// Bias `(outputs)`.
    pub bias: Param,
    input_cache: Option<Tensor>,
}

impl LinearLayer {
    /// Creates the layer with Xavier-initialized weights.
    pub fn new(inputs: usize, outputs: usize, rng: &mut SeedRng) -> Self {
        let weight = Init::XavierUniform.tensor(Shape::d2(inputs, outputs), inputs, outputs, rng);
        let bias = Init::Zeros.tensor(Shape::d1(outputs), inputs, outputs, rng);
        LinearLayer {
            weight: Param::new(weight),
            bias: Param::new(bias),
            input_cache: None,
        }
    }
}

/// Dense forward body shared by training, inference and the fused
/// Monte-Carlo engine: `x · W` then a per-element bias add.
pub(crate) fn linear_apply(input: &Tensor, weight: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let mut out = input.matmul(weight)?;
    let (n, o) = (out.shape().dims()[0], out.shape().dims()[1]);
    for r in 0..n {
        for c in 0..o {
            out.as_mut_slice()[r * o + c] += bias.as_slice()[c];
        }
    }
    Ok(out)
}

/// One layer of a network, with cached state from the last forward pass.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Convolution.
    Conv2d(Conv2dLayer),
    /// Fully connected.
    Linear(LinearLayer),
    /// Per-channel batch normalization.
    BatchNorm2d(BatchNorm2dLayer),
    /// Inverted dropout (train-mode only).
    Dropout(DropoutLayer),
    /// ReLU activation (caches its input).
    Relu {
        /// Input cached by the forward pass.
        cache: Option<Tensor>,
    },
    /// 2×2 stride-2 max pooling.
    MaxPool2 {
        /// Argmax indices and input shape from the forward pass.
        cache: Option<(Vec<usize>, Shape)>,
    },
    /// Global average pooling `(n,c,h,w) -> (n,c)`.
    GlobalAvgPool {
        /// Input shape cached by the forward pass.
        cache: Option<Shape>,
    },
    /// Flatten `(n,c,h,w) -> (n, c·h·w)`.
    Flatten {
        /// Input shape cached by the forward pass.
        cache: Option<Shape>,
    },
}

impl Layer {
    /// A fresh ReLU layer.
    pub fn relu() -> Self {
        Layer::Relu { cache: None }
    }

    /// A fresh 2×2 max-pool layer.
    pub fn maxpool2() -> Self {
        Layer::MaxPool2 { cache: None }
    }

    /// A fresh global-average-pool layer.
    pub fn global_avgpool() -> Self {
        Layer::GlobalAvgPool { cache: None }
    }

    /// A fresh flatten layer.
    pub fn flatten() -> Self {
        Layer::Flatten { cache: None }
    }

    /// Forward pass; caches whatever the backward pass will need.
    /// `training` selects batch vs running statistics for normalization
    /// layers and enables dropout masking.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        match self {
            Layer::BatchNorm2d(l) => l.forward(input, training),
            Layer::Dropout(l) => Ok(l.forward(input, training)),
            Layer::Conv2d(l) => {
                let (out, cache) =
                    conv2d_forward(input, &l.weight.value, &l.bias.value, &l.params)?;
                l.cols_cache = Some(cache);
                Ok(out)
            }
            Layer::Linear(l) => {
                let out = linear_apply(input, &l.weight.value, &l.bias.value)?;
                l.input_cache = Some(input.clone());
                Ok(out)
            }
            Layer::Relu { cache } => {
                *cache = Some(input.clone());
                Ok(relu_forward(input))
            }
            Layer::MaxPool2 { cache } => {
                let (out, arg) = maxpool2_forward(input)?;
                *cache = Some((arg, input.shape().clone()));
                Ok(out)
            }
            Layer::GlobalAvgPool { cache } => {
                *cache = Some(input.shape().clone());
                Ok(avgpool_global_forward(input)?)
            }
            Layer::Flatten { cache } => {
                *cache = Some(input.shape().clone());
                let d = input.shape().dims();
                let n = d[0];
                let rest: usize = d[1..].iter().product();
                Ok(input.reshape(&[n, rest])?)
            }
        }
    }

    /// Inference-only forward pass: identical math to
    /// [`Layer::forward`] in evaluation mode (`training = false`), but
    /// immutable — it writes no caches, so evaluation hot paths (MC
    /// trials, `Network::predict`) skip every cache clone and can share
    /// one network across threads.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn infer(&self, input: &Tensor) -> Result<Tensor> {
        match self {
            Layer::BatchNorm2d(l) => l.infer(input),
            // Eval-mode dropout is the identity.
            Layer::Dropout(_) => Ok(input.clone()),
            Layer::Conv2d(l) => Ok(conv2d_infer(
                input,
                &l.weight.value,
                &l.bias.value,
                &l.params,
            )?),
            Layer::Linear(l) => linear_apply(input, &l.weight.value, &l.bias.value),
            Layer::Relu { .. } => Ok(relu_forward(input)),
            Layer::MaxPool2 { .. } => Ok(maxpool2_forward(input)?.0),
            Layer::GlobalAvgPool { .. } => Ok(avgpool_global_forward(input)?),
            Layer::Flatten { .. } => {
                let d = input.shape().dims();
                let n = d[0];
                let rest: usize = d[1..].iter().product();
                Ok(input.reshape(&[n, rest])?)
            }
        }
    }

    /// Backward pass; accumulates parameter gradients and returns the
    /// gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns an error when called before `forward` or on shape mismatch.
    pub fn backward(&mut self, d_out: &Tensor) -> Result<Tensor> {
        match self {
            Layer::BatchNorm2d(l) => l.backward(d_out),
            Layer::Dropout(l) => l.backward(d_out),
            Layer::Conv2d(l) => {
                let cols = l.cols_cache.as_ref().ok_or_else(|| {
                    DnnError::InvalidTraining("conv backward before forward".to_string())
                })?;
                let (d_in, d_w, d_b) = conv2d_backward(d_out, &l.weight.value, cols, &l.params)?;
                l.weight.grad.axpy(1.0, &d_w)?;
                l.bias.grad.axpy(1.0, &d_b)?;
                Ok(d_in)
            }
            Layer::Linear(l) => {
                let input = l.input_cache.as_ref().ok_or_else(|| {
                    DnnError::InvalidTraining("linear backward before forward".to_string())
                })?;
                // dW = x^T · dOut ; db = column sums ; dX = dOut · W^T
                let d_w = input.transpose()?.matmul(d_out)?;
                l.weight.grad.axpy(1.0, &d_w)?;
                let (n, o) = (d_out.shape().dims()[0], d_out.shape().dims()[1]);
                for c in 0..o {
                    let mut s = 0.0f32;
                    for r in 0..n {
                        s += d_out.as_slice()[r * o + c];
                    }
                    l.bias.grad.as_mut_slice()[c] += s;
                }
                Ok(d_out.matmul(&l.weight.value.transpose()?)?)
            }
            Layer::Relu { cache } => {
                let input = cache.as_ref().ok_or_else(|| {
                    DnnError::InvalidTraining("relu backward before forward".to_string())
                })?;
                Ok(relu_backward(d_out, input)?)
            }
            Layer::MaxPool2 { cache } => {
                let (arg, shape) = cache.as_ref().ok_or_else(|| {
                    DnnError::InvalidTraining("maxpool backward before forward".to_string())
                })?;
                Ok(maxpool2_backward(d_out, arg, shape)?)
            }
            Layer::GlobalAvgPool { cache } => {
                let shape = cache.as_ref().ok_or_else(|| {
                    DnnError::InvalidTraining("avgpool backward before forward".to_string())
                })?;
                Ok(avgpool_global_backward(d_out, shape)?)
            }
            Layer::Flatten { cache } => {
                let shape = cache.as_ref().ok_or_else(|| {
                    DnnError::InvalidTraining("flatten backward before forward".to_string())
                })?;
                Ok(d_out.reshape(shape.dims())?)
            }
        }
    }

    /// Visits the layer's trainable parameters (if any).
    pub fn visit_params<F: FnMut(&mut Param)>(&mut self, mut f: F) {
        match self {
            Layer::Conv2d(l) => {
                f(&mut l.weight);
                f(&mut l.bias);
            }
            Layer::Linear(l) => {
                f(&mut l.weight);
                f(&mut l.bias);
            }
            Layer::BatchNorm2d(l) => {
                f(&mut l.gamma);
                f(&mut l.beta);
            }
            _ => {}
        }
    }

    /// Number of trainable scalars in this layer.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d(l) => l.weight.value.len() + l.bias.value.len(),
            Layer::Linear(l) => l.weight.value.len() + l.bias.value.len(),
            Layer::BatchNorm2d(l) => l.gamma.value.len() + l.beta.value.len(),
            _ => 0,
        }
    }

    /// Whether the layer carries weights mapped onto crossbars (and is
    /// therefore subject to device variation).
    pub fn has_weights(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Linear(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeedRng {
        SeedRng::new(42)
    }

    #[test]
    fn conv_layer_roundtrip() {
        let mut r = rng();
        let geom = ConvGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        let mut layer = Layer::Conv2d(Conv2dLayer::new(geom, 4, &mut r).unwrap());
        let x = Tensor::ones(Shape::d4(2, 3, 8, 8));
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 4, 8, 8]);
        let d = layer.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(d.shape(), x.shape());
    }

    #[test]
    fn linear_layer_known_values() {
        let mut r = rng();
        let mut l = LinearLayer::new(2, 2, &mut r);
        l.weight.value = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        l.bias.value = Tensor::from_slice(&[10., 20.]);
        let mut layer = Layer::Linear(l);
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![1., 1.]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[14., 26.]);
    }

    #[test]
    fn linear_backward_gradients() {
        let mut r = rng();
        let mut l = LinearLayer::new(2, 1, &mut r);
        l.weight.value = Tensor::from_vec(Shape::d2(2, 1), vec![2., 3.]).unwrap();
        let mut layer = Layer::Linear(l);
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![5., 7.]).unwrap();
        let _ = layer.forward(&x, true).unwrap();
        let d_in = layer
            .backward(&Tensor::from_vec(Shape::d2(1, 1), vec![1.0]).unwrap())
            .unwrap();
        // dX = dOut · W^T = [2, 3]
        assert_eq!(d_in.as_slice(), &[2., 3.]);
        if let Layer::Linear(l) = &mut layer {
            // dW = x^T · dOut = [5, 7]^T
            assert_eq!(l.weight.grad.as_slice(), &[5., 7.]);
            assert_eq!(l.bias.grad.as_slice(), &[1.]);
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut layer = Layer::flatten();
        let x = Tensor::ones(Shape::d4(2, 3, 4, 4));
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 48]);
        let d = layer.backward(&y).unwrap();
        assert_eq!(d.shape(), x.shape());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = Layer::relu();
        assert!(layer.backward(&Tensor::from_slice(&[1.0])).is_err());
        let mut layer = Layer::flatten();
        assert!(layer.backward(&Tensor::from_slice(&[1.0])).is_err());
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut r = rng();
        let geom = ConvGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        let mut layers = vec![
            Layer::Conv2d(Conv2dLayer::new(geom, 4, &mut r).unwrap()),
            Layer::relu(),
            Layer::maxpool2(),
            Layer::flatten(),
            Layer::Linear(LinearLayer::new(4 * 4 * 4, 3, &mut r)),
        ];
        let mut x_mut = Tensor::ones(Shape::d4(2, 3, 8, 8));
        let mut x_ref = x_mut.clone();
        for layer in &mut layers {
            x_mut = layer.forward(&x_mut, false).unwrap();
        }
        for layer in &layers {
            x_ref = layer.infer(&x_ref).unwrap();
        }
        assert_eq!(x_mut.as_slice(), x_ref.as_slice());
    }

    #[test]
    fn param_counts() {
        let mut r = rng();
        let geom = ConvGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        let conv = Layer::Conv2d(Conv2dLayer::new(geom, 4, &mut r).unwrap());
        assert_eq!(conv.param_count(), 4 * 27 + 4);
        assert!(conv.has_weights());
        let relu = Layer::relu();
        assert_eq!(relu.param_count(), 0);
        assert!(!relu.has_weights());
    }

    #[test]
    fn visit_params_touches_all() {
        let mut r = rng();
        let mut lin = Layer::Linear(LinearLayer::new(4, 3, &mut r));
        let mut seen = 0;
        lin.visit_params(|_| seen += 1);
        assert_eq!(seen, 2);
    }
}
