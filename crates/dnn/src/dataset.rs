//! `SynthCifar`: a deterministic, procedurally generated stand-in for
//! CIFAR-10.
//!
//! The real CIFAR-10 dataset cannot be redistributed inside this
//! repository, and training 500 design candidates on it is far beyond the
//! compute budget of a reproduction. `SynthCifar` keeps the *interface*
//! identical — 32×32×3 images, 10 classes, train/test split — while
//! generating images whose class structure is learnable by a CNN: each
//! class is a mixture of oriented sinusoidal gratings (Gabor-like
//! textures) with class-specific frequencies, orientations and color
//! balance, plus additive noise. See DESIGN.md §1 for the substitution
//! rationale.

use crate::{DnnError, Result};
use lcda_tensor::rng::SeedRng;
use lcda_tensor::{Shape, Tensor};

/// A labelled image-classification dataset in NCHW layout.
#[derive(Debug, Clone)]
pub struct SynthCifar {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
    size: usize,
}

impl SynthCifar {
    /// Generates `n` samples of `size`×`size`×3 images over 10 classes.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidDataset`] for `n == 0` or `size < 4`.
    pub fn generate(n: usize, size: usize, seed: u64) -> Result<Self> {
        Self::generate_classes(n, size, 10, seed)
    }

    /// Generates a dataset with an arbitrary class count.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidDataset`] for empty or degenerate
    /// requests.
    pub fn generate_classes(n: usize, size: usize, classes: usize, seed: u64) -> Result<Self> {
        if n == 0 {
            return Err(DnnError::InvalidDataset("need at least one sample".into()));
        }
        if size < 4 {
            return Err(DnnError::InvalidDataset(format!(
                "image size must be >= 4, got {size}"
            )));
        }
        if classes < 2 {
            return Err(DnnError::InvalidDataset("need at least two classes".into()));
        }
        let mut rng = SeedRng::new(seed);
        let plane = size * size;
        let mut data = vec![0.0f32; n * 3 * plane];
        let mut labels = Vec::with_capacity(n);
        for s in 0..n {
            let class = s % classes; // balanced by construction
            labels.push(class);
            let mut srng = rng.fork(s as u64);
            render_class_image(
                &mut data[s * 3 * plane..(s + 1) * 3 * plane],
                size,
                class,
                classes,
                &mut srng,
            );
        }
        Ok(SynthCifar {
            images: Tensor::from_vec(Shape::d4(n, 3, size, size), data)?,
            labels,
            classes,
            size,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image side length.
    pub fn image_size(&self) -> usize {
        self.size
    }

    /// All images as one NCHW tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// A contiguous batch `[start, start+len)` as `(images, labels)`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidDataset`] when the range is out of
    /// bounds.
    pub fn batch(&self, start: usize, len: usize) -> Result<(Tensor, Vec<usize>)> {
        if start + len > self.len() || len == 0 {
            return Err(DnnError::InvalidDataset(format!(
                "batch [{start}, {}) out of range 0..{}",
                start + len,
                self.len()
            )));
        }
        let plane = 3 * self.size * self.size;
        let data = self.images.as_slice()[start * plane..(start + len) * plane].to_vec();
        Ok((
            Tensor::from_vec(Shape::d4(len, 3, self.size, self.size), data)?,
            self.labels[start..start + len].to_vec(),
        ))
    }

    /// Splits into `(train, test)` with `test_fraction` of samples held
    /// out (interleaved so both splits stay class-balanced).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidDataset`] when either split would be
    /// empty.
    pub fn split(&self, test_fraction: f32) -> Result<(SynthCifar, SynthCifar)> {
        if !(0.0..1.0).contains(&test_fraction) {
            return Err(DnnError::InvalidDataset(
                "test fraction must be in [0, 1)".into(),
            ));
        }
        let period = (1.0 / test_fraction.max(1e-6)).round().max(2.0) as usize;
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for i in 0..self.len() {
            if i % period == period - 1 {
                test_idx.push(i);
            } else {
                train_idx.push(i);
            }
        }
        if train_idx.is_empty() || test_idx.is_empty() {
            return Err(DnnError::InvalidDataset(
                "split leaves an empty partition".into(),
            ));
        }
        Ok((self.subset(&train_idx)?, self.subset(&test_idx)?))
    }

    fn subset(&self, indices: &[usize]) -> Result<SynthCifar> {
        let plane = 3 * self.size * self.size;
        let mut data = Vec::with_capacity(indices.len() * plane);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images.as_slice()[i * plane..(i + 1) * plane]);
            labels.push(self.labels[i]);
        }
        Ok(SynthCifar {
            images: Tensor::from_vec(Shape::d4(indices.len(), 3, self.size, self.size), data)?,
            labels,
            classes: self.classes,
            size: self.size,
        })
    }
}

/// Renders one class-conditioned image into a `3 * size * size` buffer.
fn render_class_image(
    out: &mut [f32],
    size: usize,
    class: usize,
    classes: usize,
    rng: &mut SeedRng,
) {
    let plane = size * size;
    // Class-specific texture parameters, spread around the unit circle.
    let theta = std::f32::consts::PI * class as f32 / classes as f32;
    let freq = 1.0 + (class % 5) as f32; // cycles across the image
    let phase = rng.uniform(0.0, std::f32::consts::TAU);
    let (dx, dy) = (theta.cos(), theta.sin());
    // Class-specific color balance.
    let color = [
        0.5 + 0.5 * (theta).cos(),
        0.5 + 0.5 * (theta + 2.1).cos(),
        0.5 + 0.5 * (theta + 4.2).cos(),
    ];
    let jitter = rng.uniform(0.8, 1.2);
    for c in 0..3 {
        for y in 0..size {
            for x in 0..size {
                let u = x as f32 / size as f32;
                let v = y as f32 / size as f32;
                let wave =
                    (std::f32::consts::TAU * freq * jitter * (u * dx + v * dy) + phase).sin();
                let secondary =
                    (std::f32::consts::TAU * (freq + 2.0) * (u * dy - v * dx)).cos() * 0.3;
                let noise = rng.normal_with(0.0, 0.25);
                out[c * plane + y * size + x] =
                    (color[c] * wave + secondary + noise).clamp(-2.0, 2.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shapes_and_balance() {
        let d = SynthCifar::generate(50, 16, 1).unwrap();
        assert_eq!(d.len(), 50);
        assert_eq!(d.classes(), 10);
        assert_eq!(d.images().shape().dims(), &[50, 3, 16, 16]);
        let mut counts = [0usize; 10];
        for &l in d.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = SynthCifar::generate(10, 8, 7).unwrap();
        let b = SynthCifar::generate(10, 8, 7).unwrap();
        assert_eq!(a.images().as_slice(), b.images().as_slice());
        let c = SynthCifar::generate(10, 8, 8).unwrap();
        assert_ne!(a.images().as_slice(), c.images().as_slice());
    }

    #[test]
    fn invalid_requests_rejected() {
        assert!(SynthCifar::generate(0, 16, 0).is_err());
        assert!(SynthCifar::generate(10, 2, 0).is_err());
        assert!(SynthCifar::generate_classes(10, 16, 1, 0).is_err());
    }

    #[test]
    fn batch_extraction() {
        let d = SynthCifar::generate(20, 8, 2).unwrap();
        let (x, y) = d.batch(5, 4).unwrap();
        assert_eq!(x.shape().dims(), &[4, 3, 8, 8]);
        assert_eq!(y, &d.labels()[5..9]);
        assert!(d.batch(18, 4).is_err());
        assert!(d.batch(0, 0).is_err());
    }

    #[test]
    fn split_partitions_everything() {
        let d = SynthCifar::generate(100, 8, 3).unwrap();
        let (train, test) = d.split(0.2).unwrap();
        assert_eq!(train.len() + test.len(), 100);
        assert!(test.len() >= 15 && test.len() <= 25);
    }

    #[test]
    fn split_bad_fraction_rejected() {
        let d = SynthCifar::generate(10, 8, 3).unwrap();
        assert!(d.split(1.0).is_err());
        assert!(d.split(-0.1).is_err());
    }

    #[test]
    fn classes_are_distinguishable() {
        // Mean image of class 0 should differ markedly from class 5's —
        // otherwise nothing is learnable.
        let d = SynthCifar::generate(200, 16, 4).unwrap();
        let plane = 3 * 16 * 16;
        let mut mean = vec![vec![0.0f32; plane]; 10];
        let mut counts = [0usize; 10];
        for (i, &l) in d.labels().iter().enumerate() {
            counts[l] += 1;
            for (m, &v) in mean[l]
                .iter_mut()
                .zip(&d.images().as_slice()[i * plane..(i + 1) * plane])
            {
                *m += v;
            }
        }
        for (m, &c) in mean.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let dist: f32 = mean[0]
            .iter()
            .zip(&mean[5])
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "class means too close: {dist}");
    }

    #[test]
    fn values_bounded() {
        let d = SynthCifar::generate(10, 8, 5).unwrap();
        assert!(d
            .images()
            .as_slice()
            .iter()
            .all(|&x| (-2.0..=2.0).contains(&x)));
    }
}

/// Label-preserving training augmentations: horizontal flips and small
/// translations (the standard CIFAR recipe, scaled to the synthetic
/// dataset). Augmentation happens on batches, leaving the base dataset
/// untouched, so evaluation data stays fixed.
#[derive(Debug, Clone, Copy)]
pub struct Augmentation {
    /// Probability of mirroring an image horizontally.
    pub flip_prob: f64,
    /// Maximum |shift| in pixels for random translation (zero padding).
    pub max_shift: usize,
}

impl Augmentation {
    /// The standard CIFAR-style recipe: 50% flips, ±2 px shifts.
    pub fn standard() -> Self {
        Augmentation {
            flip_prob: 0.5,
            max_shift: 2,
        }
    }

    /// Applies the augmentation in place to one NCHW batch.
    pub fn apply(&self, batch: &mut Tensor, rng: &mut SeedRng) -> crate::Result<()> {
        if batch.shape().rank() != 4 {
            return Err(DnnError::InvalidDataset(
                "augmentation expects an NCHW batch".into(),
            ));
        }
        let d = batch.shape().dims().to_vec();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let plane = h * w;
        for s in 0..n {
            let flip = rng.chance(self.flip_prob);
            let (dy, dx) = if self.max_shift == 0 {
                (0isize, 0isize)
            } else {
                let m = self.max_shift as isize;
                (
                    rng.index(2 * self.max_shift + 1) as isize - m,
                    rng.index(2 * self.max_shift + 1) as isize - m,
                )
            };
            if !flip && dy == 0 && dx == 0 {
                continue;
            }
            for ch in 0..c {
                let base = (s * c + ch) * plane;
                let src: Vec<f32> = batch.as_slice()[base..base + plane].to_vec();
                let dst = &mut batch.as_mut_slice()[base..base + plane];
                for y in 0..h {
                    for x in 0..w {
                        let sy = y as isize - dy;
                        let sx_pre = x as isize - dx;
                        let sx = if flip {
                            w as isize - 1 - sx_pre
                        } else {
                            sx_pre
                        };
                        dst[y * w + x] = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize
                        {
                            src[sy as usize * w + sx as usize]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod augmentation_tests {
    use super::*;

    #[test]
    fn identity_augmentation_is_noop() {
        let d = SynthCifar::generate_classes(4, 8, 4, 1).unwrap();
        let (mut batch, _) = d.batch(0, 4).unwrap();
        let before = batch.clone();
        let aug = Augmentation {
            flip_prob: 0.0,
            max_shift: 0,
        };
        aug.apply(&mut batch, &mut SeedRng::new(0)).unwrap();
        assert_eq!(batch, before);
    }

    #[test]
    fn pure_flip_is_an_involution() {
        let d = SynthCifar::generate_classes(2, 8, 4, 2).unwrap();
        let (mut batch, _) = d.batch(0, 2).unwrap();
        let before = batch.clone();
        let aug = Augmentation {
            flip_prob: 1.0,
            max_shift: 0,
        };
        aug.apply(&mut batch, &mut SeedRng::new(0)).unwrap();
        assert_ne!(batch, before, "flip changes the image");
        aug.apply(&mut batch, &mut SeedRng::new(0)).unwrap();
        assert_eq!(batch, before, "double flip restores it");
    }

    #[test]
    fn shift_pads_with_zeros_and_preserves_energy_bound() {
        let d = SynthCifar::generate_classes(8, 8, 4, 3).unwrap();
        let (mut batch, _) = d.batch(0, 8).unwrap();
        let before_norm = batch.norm_l2();
        let aug = Augmentation {
            flip_prob: 0.0,
            max_shift: 3,
        };
        aug.apply(&mut batch, &mut SeedRng::new(7)).unwrap();
        // Translation with zero padding can only lose mass.
        assert!(batch.norm_l2() <= before_norm + 1e-4);
    }

    #[test]
    fn augmentation_rejects_non_nchw() {
        let mut t = Tensor::zeros(Shape::d2(4, 4));
        let aug = Augmentation::standard();
        assert!(aug.apply(&mut t, &mut SeedRng::new(0)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SynthCifar::generate_classes(4, 8, 4, 4).unwrap();
        let (mut a, _) = d.batch(0, 4).unwrap();
        let (mut b, _) = d.batch(0, 4).unwrap();
        let aug = Augmentation::standard();
        aug.apply(&mut a, &mut SeedRng::new(9)).unwrap();
        aug.apply(&mut b, &mut SeedRng::new(9)).unwrap();
        assert_eq!(a, b);
    }
}
