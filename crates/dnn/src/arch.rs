//! Architecture descriptions: the "rollout" made concrete.
//!
//! The NACIM/LCDA search space fixes the backbone (six convolution layers,
//! two fully-connected layers, hidden size 1024, CIFAR-shaped input) and
//! searches each convolution's `(out_channels, kernel)` pair. An
//! [`Architecture`] is that description, independent of both the tensor
//! engine (it can [`Architecture::build`] a trainable [`Network`]) and the
//! hardware model (`lcda-core` converts it to crossbar workloads).

use crate::layer::{Conv2dLayer, Layer, LinearLayer};
use crate::network::Network;
use crate::{DnnError, Result};
use lcda_tensor::ops::ConvGeometry;
use lcda_tensor::rng::SeedRng;
use serde::{Deserialize, Serialize};

/// One convolution stage: `(out_channels, kernel)` — the paper's rollout
/// "number pair".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Output channels.
    pub channels: u32,
    /// Square kernel side.
    pub kernel: u32,
}

impl ConvSpec {
    /// Creates a spec.
    pub fn new(channels: u32, kernel: u32) -> Self {
        ConvSpec { channels, kernel }
    }
}

/// A complete network description in the LCDA search space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Architecture {
    /// Input channels (3 for CIFAR).
    pub in_channels: u32,
    /// Input spatial size (32 for CIFAR).
    pub in_size: u32,
    /// The searched convolution stages; 2×2 max pooling follows every
    /// second stage.
    pub convs: Vec<ConvSpec>,
    /// Hidden width of the penultimate fully-connected layer (1024 in the
    /// paper).
    pub hidden: u32,
    /// Output classes (10 for CIFAR-10).
    pub classes: u32,
    /// Insert a pooling layer after every `pool_every` convolutions.
    pub pool_every: u32,
    /// Insert batch normalization between each convolution and its ReLU.
    pub batch_norm: bool,
    /// Dropout percentage (0 = off) applied before the classifier head.
    pub dropout_percent: u8,
}

impl Architecture {
    /// The paper's backbone with a given list of conv specs.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidArchitecture`] for an empty conv list or
    /// zero-valued fields.
    pub fn cifar10(convs: Vec<ConvSpec>) -> Result<Self> {
        let arch = Architecture {
            in_channels: 3,
            in_size: 32,
            convs,
            hidden: 1024,
            classes: 10,
            pool_every: 2,
            batch_norm: false,
            dropout_percent: 0,
        };
        arch.validate()?;
        Ok(arch)
    }

    /// The reference rollout from the paper's prompt template:
    /// `[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]`.
    pub fn reference() -> Self {
        Architecture::cifar10(vec![
            ConvSpec::new(32, 3),
            ConvSpec::new(32, 3),
            ConvSpec::new(64, 3),
            ConvSpec::new(64, 3),
            ConvSpec::new(128, 3),
            ConvSpec::new(128, 3),
        ])
        .expect("reference architecture is valid")
    }

    /// A deliberately tiny architecture for fast unit/doc tests.
    pub fn tiny_test() -> Self {
        Architecture {
            in_channels: 3,
            in_size: 8,
            convs: vec![ConvSpec::new(4, 3), ConvSpec::new(8, 3)],
            hidden: 16,
            classes: 4,
            pool_every: 2,
            batch_norm: false,
            dropout_percent: 0,
        }
    }

    /// Enables batch normalization after every convolution.
    pub fn with_batch_norm(mut self) -> Self {
        self.batch_norm = true;
        self
    }

    /// Enables dropout (as a percentage in 0..100) before the classifier
    /// head.
    pub fn with_dropout(mut self, percent: u8) -> Self {
        self.dropout_percent = percent;
        self
    }

    /// Validates dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidArchitecture`] when any field is zero,
    /// when a kernel is even or larger than the current spatial plane, or
    /// when pooling shrinks the plane away entirely.
    pub fn validate(&self) -> Result<()> {
        if self.convs.is_empty() {
            return Err(DnnError::InvalidArchitecture(
                "at least one conv stage required".to_string(),
            ));
        }
        if self.in_channels == 0
            || self.in_size == 0
            || self.hidden == 0
            || self.classes == 0
            || self.pool_every == 0
        {
            return Err(DnnError::InvalidArchitecture(
                "dimensions must be positive".to_string(),
            ));
        }
        if self.dropout_percent >= 100 {
            return Err(DnnError::InvalidArchitecture(format!(
                "dropout percentage must be < 100, got {}",
                self.dropout_percent
            )));
        }
        let mut size = self.in_size;
        for (i, c) in self.convs.iter().enumerate() {
            if c.channels == 0 {
                return Err(DnnError::InvalidArchitecture(format!(
                    "conv {i} has zero channels"
                )));
            }
            if c.kernel == 0 || c.kernel % 2 == 0 {
                return Err(DnnError::InvalidArchitecture(format!(
                    "conv {i} kernel must be odd and positive, got {}",
                    c.kernel
                )));
            }
            if c.kernel > size + 2 * (c.kernel / 2) {
                return Err(DnnError::InvalidArchitecture(format!(
                    "conv {i} kernel {} exceeds plane {size}",
                    c.kernel
                )));
            }
            if (i as u32 + 1).is_multiple_of(self.pool_every) {
                size /= 2;
                if size == 0 {
                    return Err(DnnError::InvalidArchitecture(format!(
                        "pooling after conv {i} empties the spatial plane"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Spatial size after all conv/pool stages.
    pub fn final_spatial(&self) -> u32 {
        let mut size = self.in_size;
        for i in 0..self.convs.len() as u32 {
            if (i + 1) % self.pool_every == 0 {
                size /= 2;
            }
        }
        size.max(1)
    }

    /// Flattened feature count entering the first FC layer.
    pub fn flat_features(&self) -> u32 {
        let last_c = self.convs.last().map(|c| c.channels).unwrap_or(0);
        last_c * self.final_spatial() * self.final_spatial()
    }

    /// Total weight count (conv + fc), the main driver of model capacity.
    pub fn weight_count(&self) -> u64 {
        let mut c_in = self.in_channels as u64;
        let mut total = 0u64;
        for c in &self.convs {
            total += c_in * u64::from(c.kernel) * u64::from(c.kernel) * u64::from(c.channels);
            c_in = u64::from(c.channels);
        }
        total += u64::from(self.flat_features()) * u64::from(self.hidden);
        total += u64::from(self.hidden) * u64::from(self.classes);
        total
    }

    /// Per-stage `(c_in, spatial, spec)` iteration used by both the
    /// network builder and the hardware workload conversion.
    pub fn conv_stages(&self) -> Vec<(u32, u32, ConvSpec)> {
        let mut out = Vec::with_capacity(self.convs.len());
        let mut c_in = self.in_channels;
        let mut size = self.in_size;
        for (i, &spec) in self.convs.iter().enumerate() {
            out.push((c_in, size, spec));
            c_in = spec.channels;
            if (i as u32 + 1).is_multiple_of(self.pool_every) {
                size /= 2;
            }
        }
        out
    }

    /// Builds a trainable network with weights drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates validation and tensor-shape errors.
    pub fn build(&self, seed: u64) -> Result<Network> {
        self.validate()?;
        let mut rng = SeedRng::new(seed);
        let mut layers = Vec::new();
        for (i, (c_in, size, spec)) in self.conv_stages().into_iter().enumerate() {
            let geom = ConvGeometry::new(
                c_in as usize,
                size as usize,
                size as usize,
                spec.kernel as usize,
                1,
                (spec.kernel / 2) as usize,
            )?;
            layers.push(Layer::Conv2d(Conv2dLayer::new(
                geom,
                spec.channels as usize,
                &mut rng,
            )?));
            if self.batch_norm {
                layers.push(Layer::BatchNorm2d(
                    crate::extra_layers::BatchNorm2dLayer::new(spec.channels as usize),
                ));
            }
            layers.push(Layer::relu());
            if (i as u32 + 1).is_multiple_of(self.pool_every) {
                layers.push(Layer::maxpool2());
            }
        }
        layers.push(Layer::flatten());
        if self.dropout_percent > 0 {
            layers.push(Layer::Dropout(crate::extra_layers::DropoutLayer::new(
                f32::from(self.dropout_percent) / 100.0,
                rng.next_u64(),
            )?));
        }
        layers.push(Layer::Linear(LinearLayer::new(
            self.flat_features() as usize,
            self.hidden as usize,
            &mut rng,
        )));
        layers.push(Layer::relu());
        layers.push(Layer::Linear(LinearLayer::new(
            self.hidden as usize,
            self.classes as usize,
            &mut rng,
        )));
        Ok(Network::new(layers))
    }
}

impl Default for Architecture {
    fn default() -> Self {
        Architecture::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcda_tensor::{Shape, Tensor};

    #[test]
    fn reference_is_valid() {
        let a = Architecture::reference();
        a.validate().unwrap();
        assert_eq!(a.convs.len(), 6);
        assert_eq!(a.hidden, 1024);
        // 32 → 16 → 8 → 4 after three pools.
        assert_eq!(a.final_spatial(), 4);
        assert_eq!(a.flat_features(), 128 * 16);
    }

    #[test]
    fn weight_count_reference() {
        let a = Architecture::reference();
        let conv =
            3 * 9 * 32 + 32 * 9 * 32 + 32 * 9 * 64 + 64 * 9 * 64 + 64 * 9 * 128 + 128 * 9 * 128;
        let fc = 2048 * 1024 + 1024 * 10;
        assert_eq!(a.weight_count(), (conv + fc) as u64);
    }

    #[test]
    fn invalid_architectures_rejected() {
        assert!(Architecture::cifar10(vec![]).is_err());
        assert!(Architecture::cifar10(vec![ConvSpec::new(0, 3)]).is_err());
        assert!(Architecture::cifar10(vec![ConvSpec::new(16, 4)]).is_err());
        assert!(Architecture::cifar10(vec![ConvSpec::new(16, 0)]).is_err());
        // Too many pools empty the plane: 10 stages of pooling on 32px.
        let many = vec![ConvSpec::new(8, 3); 12];
        let mut a = Architecture::cifar10(many).unwrap_err();
        // ^ validate fails inside cifar10
        if let DnnError::InvalidArchitecture(msg) = &mut a {
            assert!(msg.contains("empties"));
        } else {
            panic!("wrong error kind: {a:?}");
        }
    }

    #[test]
    fn build_and_forward_tiny() {
        let a = Architecture::tiny_test();
        let mut net = a.build(3).unwrap();
        let x = Tensor::ones(Shape::d4(2, 3, 8, 8));
        let logits = net.forward(&x).unwrap();
        assert_eq!(logits.shape().dims(), &[2, 4]);
    }

    #[test]
    fn conv_stages_track_channels_and_size() {
        let a = Architecture::reference();
        let stages = a.conv_stages();
        assert_eq!(stages[0], (3, 32, ConvSpec::new(32, 3)));
        assert_eq!(stages[2], (32, 16, ConvSpec::new(64, 3)));
        assert_eq!(stages[5], (128, 8, ConvSpec::new(128, 3)));
    }

    #[test]
    fn deterministic_build() {
        let a = Architecture::tiny_test();
        let n1 = a.build(5).unwrap();
        let n2 = a.build(5).unwrap();
        assert_eq!(n1.snapshot_weights(), n2.snapshot_weights());
    }

    #[test]
    fn serde_roundtrip() {
        let a = Architecture::reference();
        let json = serde_json::to_string(&a).unwrap();
        let b: Architecture = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod regularized_tests {
    use super::*;
    use crate::dataset::SynthCifar;
    use crate::trainer::{TrainConfig, Trainer};

    #[test]
    fn batchnorm_dropout_network_trains() {
        let arch = Architecture::tiny_test().with_batch_norm().with_dropout(20);
        let net = arch.build(9).unwrap();
        // Two extra BN params per conv + same conv/fc params as before.
        let plain = Architecture::tiny_test().build(9).unwrap();
        assert!(net.param_count() > plain.param_count());
        let data = SynthCifar::generate_classes(64, 8, 4, 31).unwrap();
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs = 8;
        let mut t = Trainer::new(net, cfg);
        let report = t.fit(&data).unwrap();
        assert!(
            report.final_train_accuracy > 0.35,
            "accuracy {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn eval_mode_is_deterministic_with_dropout() {
        let arch = Architecture::tiny_test().with_dropout(50);
        let mut net = arch.build(10).unwrap();
        let data = SynthCifar::generate_classes(8, 8, 4, 32).unwrap();
        // predict() runs in eval mode → dropout off → deterministic.
        let a = net.predict(data.images()).unwrap();
        let b = net.predict(data.images()).unwrap();
        assert_eq!(a, b);
        assert!(net.is_training(), "mode restored after predict");
    }

    #[test]
    fn excessive_dropout_rejected() {
        let arch = Architecture::tiny_test().with_dropout(100);
        assert!(arch.build(0).is_err());
    }
}
