//! Training loops, including the paper's noise-injection training.
//!
//! §III-C: "As DNN models deployed on CiM DNN accelerators are susceptible
//! to the influence of device variations, we employ the noise injection
//! training method for each DNN topology." Noise-injection training
//! perturbs the weights *before* each forward/backward pass the same way
//! the crossbar would, computes gradients at the perturbed point, and
//! applies them to the clean weights — producing models whose loss
//! landscape is flat around the programmed weights.

use crate::dataset::{Augmentation, SynthCifar};
use crate::metrics::accuracy;
use crate::network::Network;
use crate::{DnnError, Result};
use lcda_tensor::ops::cross_entropy_loss;
use lcda_tensor::optim::{ParamOptimizer, Sgd};
use lcda_variation::weights::WeightPerturber;
use lcda_variation::VariationConfig;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: u32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// When set, noise-injection training with this variation corner.
    pub noise_injection: Option<VariationConfig>,
    /// When set, label-preserving batch augmentation (flips/shifts).
    pub augmentation: Option<Augmentation>,
    /// RNG seed for batch ordering and injected noise.
    pub seed: u64,
}

impl TrainConfig {
    /// A reasonable default for the synthetic dataset.
    pub fn standard() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            learning_rate: 0.02,
            momentum: 0.9,
            noise_injection: None,
            augmentation: None,
            seed: 0,
        }
    }

    /// A minimal configuration for fast unit/doc tests.
    pub fn fast_test() -> Self {
        TrainConfig {
            epochs: 2,
            batch_size: 8,
            learning_rate: 0.05,
            momentum: 0.9,
            noise_injection: None,
            augmentation: None,
            seed: 0,
        }
    }

    /// Enables noise-injection training with the given corner.
    pub fn with_noise_injection(mut self, config: VariationConfig) -> Self {
        self.noise_injection = Some(config);
        self
    }

    /// Enables batch augmentation.
    pub fn with_augmentation(mut self, augmentation: Augmentation) -> Self {
        self.augmentation = Some(augmentation);
        self
    }

    /// Validates hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidTraining`] for zero epochs/batch or a
    /// non-positive learning rate.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(DnnError::InvalidTraining(
                "epochs and batch size must be positive".into(),
            ));
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(DnnError::InvalidTraining(
                "learning rate must be positive".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(DnnError::InvalidTraining(
                "momentum must be in [0, 1)".into(),
            ));
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::standard()
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training data after the final epoch.
    pub final_train_accuracy: f32,
}

/// Drives training of one [`Network`].
#[derive(Debug)]
pub struct Trainer {
    network: Network,
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer owning the network.
    pub fn new(network: Network, config: TrainConfig) -> Self {
        Trainer { network, config }
    }

    /// Read access to the network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network (for evaluation).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Consumes the trainer, returning the trained network.
    pub fn into_network(self) -> Network {
        self.network
    }

    /// Trains on the dataset and reports per-epoch losses.
    ///
    /// With `noise_injection` set, each batch perturbs the weight matrices
    /// with a fresh variation sample before the forward/backward pass and
    /// restores the clean weights before the optimizer update.
    ///
    /// # Errors
    ///
    /// Propagates configuration and tensor errors.
    pub fn fit(&mut self, data: &SynthCifar) -> Result<TrainReport> {
        self.config.validate()?;
        let mut opt = Sgd::with_momentum(self.config.learning_rate, self.config.momentum);
        self.network.register_params(&mut opt);
        let n = data.len();
        let bs = self.config.batch_size.min(n);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs as usize);
        let mut noise_seed = self.config.seed.wrapping_mul(0x5851_F42D_4C95_7F2D);
        let mut aug_rng = lcda_tensor::rng::SeedRng::new(self.config.seed.wrapping_add(0xA06));

        for epoch in 0..self.config.epochs {
            let mut total = 0.0f32;
            let mut batches = 0u32;
            let mut start = 0usize;
            // Simple LR decay keeps late epochs stable.
            let decay = 1.0 / (1.0 + 0.1 * epoch as f32);
            opt.set_learning_rate(self.config.learning_rate * decay);
            while start < n {
                let len = bs.min(n - start);
                let (mut x, y) = data.batch(start, len)?;
                if let Some(aug) = &self.config.augmentation {
                    aug.apply(&mut x, &mut aug_rng)?;
                }
                let loss = match self.config.noise_injection.clone() {
                    None => self.network.train_step(&x, &y, &mut opt)?,
                    Some(corner) => {
                        noise_seed = noise_seed.wrapping_add(0x9E37_79B9);
                        self.noisy_step(&x, &y, &mut opt, &corner, noise_seed)?
                    }
                };
                total += loss;
                batches += 1;
                start += len;
            }
            epoch_losses.push(total / batches.max(1) as f32);
        }
        let preds = self.network.predict(data.images())?;
        let final_train_accuracy = accuracy(&preds, data.labels())?;
        Ok(TrainReport {
            epoch_losses,
            final_train_accuracy,
        })
    }

    /// One noise-injection step: perturb → forward/backward → restore →
    /// update.
    fn noisy_step<O: ParamOptimizer>(
        &mut self,
        x: &lcda_tensor::Tensor,
        y: &[usize],
        opt: &mut O,
        corner: &VariationConfig,
        seed: u64,
    ) -> Result<f32> {
        let w_max = self.network.max_abs_weight().max(1e-3);
        let perturber = WeightPerturber::new(corner.clone(), w_max);
        let clean = self.network.snapshot_weights();
        let mut matrix_index = 0u64;
        self.network.perturb_weight_matrices(|w| {
            perturber.perturb(w, seed.wrapping_add(matrix_index));
            matrix_index += 1;
        });
        self.network.zero_grad();
        let logits = self.network.forward(x)?;
        let (loss, d_logits) = cross_entropy_loss(&logits, y)?;
        self.network.backward(&d_logits)?;
        // Gradients were taken at the perturbed point; apply them to the
        // clean weights (standard noise-injection training).
        self.network.restore_weights(&clean);
        self.network.apply_grads(opt)?;
        Ok(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;

    fn data() -> SynthCifar {
        SynthCifar::generate_classes(64, 8, 4, 11).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(TrainConfig::standard().validate().is_ok());
        let mut c = TrainConfig::standard();
        c.epochs = 0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::standard();
        c.learning_rate = -1.0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::standard();
        c.momentum = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let net = Architecture::tiny_test().build(1).unwrap();
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs = 6;
        let mut t = Trainer::new(net, cfg);
        let report = t.fit(&data()).unwrap();
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "losses {:?}", report.epoch_losses);
    }

    #[test]
    fn learns_above_chance() {
        let net = Architecture::tiny_test().build(2).unwrap();
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs = 10;
        let mut t = Trainer::new(net, cfg);
        let report = t.fit(&data()).unwrap();
        // 4 classes → chance is 0.25.
        assert!(
            report.final_train_accuracy > 0.4,
            "accuracy {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn noise_injection_trains_and_learns() {
        let net = Architecture::tiny_test().build(3).unwrap();
        let mut cfg =
            TrainConfig::fast_test().with_noise_injection(VariationConfig::rram_moderate());
        cfg.epochs = 10;
        let mut t = Trainer::new(net, cfg);
        let report = t.fit(&data()).unwrap();
        assert!(
            report.final_train_accuracy > 0.35,
            "accuracy {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn deterministic_training() {
        let run = || {
            let net = Architecture::tiny_test().build(4).unwrap();
            let mut t = Trainer::new(net, TrainConfig::fast_test());
            t.fit(&data()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_has_one_loss_per_epoch() {
        let net = Architecture::tiny_test().build(5).unwrap();
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs = 3;
        let mut t = Trainer::new(net, cfg);
        let report = t.fit(&data()).unwrap();
        assert_eq!(report.epoch_losses.len(), 3);
    }
}

#[cfg(test)]
mod augmentation_training_tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::dataset::Augmentation;

    #[test]
    fn augmented_training_still_learns() {
        let data = SynthCifar::generate_classes(64, 8, 4, 51).unwrap();
        let net = Architecture::tiny_test().build(51).unwrap();
        let mut cfg = TrainConfig::fast_test().with_augmentation(Augmentation::standard());
        cfg.epochs = 10;
        let mut t = Trainer::new(net, cfg);
        let report = t.fit(&data).unwrap();
        assert!(
            report.final_train_accuracy > 0.35,
            "accuracy {}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn augmented_training_is_deterministic() {
        let run = || {
            let data = SynthCifar::generate_classes(32, 8, 4, 52).unwrap();
            let net = Architecture::tiny_test().build(52).unwrap();
            let cfg = TrainConfig::fast_test().with_augmentation(Augmentation::standard());
            Trainer::new(net, cfg).fit(&data).unwrap()
        };
        assert_eq!(run(), run());
    }
}
