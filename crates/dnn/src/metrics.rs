//! Classification metrics.

use crate::{DnnError, Result};

/// Fraction of predictions matching the labels, in `[0, 1]`.
///
/// # Errors
///
/// Returns [`DnnError::InvalidDataset`] for empty or mismatched inputs.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f32> {
    if predictions.is_empty() || predictions.len() != labels.len() {
        return Err(DnnError::InvalidDataset(format!(
            "predictions ({}) and labels ({}) must be equal-length and non-empty",
            predictions.len(),
            labels.len()
        )));
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

/// A confusion matrix: `matrix[true][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// Builds the matrix from predictions and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidDataset`] for mismatched inputs or
    /// out-of-range classes.
    pub fn new(predictions: &[usize], labels: &[usize], classes: usize) -> Result<Self> {
        if predictions.len() != labels.len() {
            return Err(DnnError::InvalidDataset(
                "predictions and labels must be equal-length".into(),
            ));
        }
        let mut counts = vec![0u32; classes * classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            if p >= classes || l >= classes {
                return Err(DnnError::InvalidDataset(format!(
                    "class {} out of range 0..{classes}",
                    p.max(l)
                )));
            }
            counts[l * classes + p] += 1;
        }
        Ok(ConfusionMatrix { classes, counts })
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> u32 {
        self.counts[t * self.classes + p]
    }

    /// Per-class recall (diagonal over row sum); `None` when the class has
    /// no samples.
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: u32 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }

    /// Overall accuracy from the matrix.
    pub fn accuracy(&self) -> f32 {
        let total: u32 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u32 = (0..self.classes).map(|c| self.count(c, c)).sum();
        diag as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]).unwrap(), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]).unwrap(), 1.0 / 3.0);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn confusion_counts() {
        let m = ConfusionMatrix::new(&[0, 1, 1, 0], &[0, 1, 0, 0], 2).unwrap();
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.count(1, 0), 0);
        assert!((m.accuracy() - 0.75).abs() < 1e-6);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.recall(1), Some(1.0));
    }

    #[test]
    fn confusion_rejects_bad_classes() {
        assert!(ConfusionMatrix::new(&[5], &[0], 2).is_err());
        assert!(ConfusionMatrix::new(&[0], &[0, 1], 2).is_err());
    }

    #[test]
    fn empty_class_recall_is_none() {
        let m = ConfusionMatrix::new(&[0], &[0], 3).unwrap();
        assert_eq!(m.recall(2), None);
    }
}
