//! Fused Monte-Carlo forward engine: one GEMM per layer for *all* trials.
//!
//! The per-trial path in [`crate::mc_eval`] clones the network once per
//! chip instance and runs a full forward pass per trial. This engine
//! instead precomputes every trial's perturbed weight matrices (same
//! per-`(trial, matrix)` [`stream_seed`] discipline), then exploits a
//! structural fact: activations are **shared across trials until the
//! first weighted layer**, because only weight matrices are perturbed.
//! At that layer all trial weights are stacked into one big GEMM against
//! the shared activations; afterwards activations diverge and each trial
//! proceeds with its own (still batched-over-samples) GEMMs.
//!
//! # Bit-identity contract
//!
//! Fused results equal the sequential per-trial path bit-for-bit, for any
//! thread count, because:
//!
//! 1. perturbed weights come from the exact per-trial code path
//!    ([`WeightPerturber::perturb_batch`] replays `perturb_after` per
//!    seed),
//! 2. stacking trial weights as extra GEMM rows (conv) or columns
//!    (linear) changes *which* output elements a kernel call produces,
//!    never any element's ascending-`k` summation chain (see
//!    `lcda_tensor::ops::gemm`), and
//! 3. thread fan-out splits trials into the same contiguous chunks as
//!    [`lcda_variation::montecarlo::try_run_parallel`], and per-trial
//!    results are independent of chunk grouping.
//!
//! The int8 path quantizes each trial's weight block with its **own**
//! per-tensor scale (and the shared activations once per layer), so int8
//! results are also invariant to fusion and threading — integer
//! accumulation is exact.

use crate::dataset::SynthCifar;
use crate::layer::{linear_apply, Layer};
use crate::mc_eval::{McEvalConfig, Precision};
use crate::metrics::accuracy;
use crate::network::Network;
use crate::{DnnError, Result};
use lcda_tensor::ops::{gemm_f32, gemm_i8, im2col_batch, quantize_symmetric, Conv2dParams};
use lcda_tensor::{Shape, Tensor};
use lcda_variation::montecarlo::{stream_seed, trial_seed, McStats};
use lcda_variation::weights::WeightPerturber;

/// Activations flowing through the fused forward: one tensor shared by
/// every trial (before the first weighted layer), or one per trial.
enum Acts {
    Shared(Tensor),
    PerTrial(Vec<Tensor>),
}

/// Entry point: fused Monte-Carlo accuracy with the same statistics,
/// seeding and error discipline as the per-trial `mc_accuracy` path.
pub(crate) fn mc_accuracy_fused(
    network: &Network,
    data: &SynthCifar,
    config: &McEvalConfig,
) -> Result<McStats> {
    if config.trials == 0 {
        return Err(DnnError::InvalidTraining(
            "monte-carlo evaluation needs trials > 0".into(),
        ));
    }
    let w_max = network.max_abs_weight().max(1e-3);
    let perturber = WeightPerturber::new(config.variation.clone(), w_max);
    let trials = config.trials as usize;
    let threads = config.threads.max(1).min(trials);
    let samples = if threads == 1 {
        fused_trial_accuracies(network, data, &perturber, config, 0, config.trials)?
    } else {
        // Same contiguous chunking as try_run_parallel, so the fan-out is
        // bit-identical to sequential and errors are reported for the
        // lowest failing chunk deterministically.
        let chunk = trials.div_ceil(threads);
        let mut slots: Vec<Option<Result<Vec<f32>>>> = Vec::new();
        slots.resize_with(threads, || None);
        crossbeam::scope(|s| {
            for (w, slot) in slots.iter_mut().enumerate() {
                let perturber = &perturber;
                let lo = (w * chunk).min(trials) as u32;
                let hi = ((w + 1) * chunk).min(trials) as u32;
                s.spawn(move |_| {
                    *slot = Some(fused_trial_accuracies(
                        network, data, perturber, config, lo, hi,
                    ));
                });
            }
        })
        .expect("fused monte-carlo worker panicked");
        let mut samples = Vec::with_capacity(trials);
        for slot in slots {
            samples.extend(slot.expect("every chunk slot is filled")?);
        }
        samples
    };
    McStats::from_samples(&samples)
        .map_err(|_| DnnError::InvalidTraining("monte-carlo evaluation needs trials > 0".into()))
}

/// Runs trials `[t_lo, t_hi)` through the fused forward and returns their
/// accuracies in ascending trial order.
fn fused_trial_accuracies(
    network: &Network,
    data: &SynthCifar,
    perturber: &WeightPerturber,
    config: &McEvalConfig,
    t_lo: u32,
    t_hi: u32,
) -> Result<Vec<f32>> {
    let span = (t_hi - t_lo) as usize;
    if span == 0 {
        return Ok(Vec::new());
    }
    // Precompute every trial's perturbed weights, matrix by matrix, with
    // the per-trial path's exact (trial, matrix) -> stream seeding.
    let clean = network.weight_matrices();
    let mut trial_weights: Vec<Vec<Tensor>> = Vec::with_capacity(clean.len());
    for (m, w) in clean.iter().enumerate() {
        let seeds: Vec<u64> = (t_lo..t_hi)
            .map(|t| stream_seed(trial_seed(config.seed, t), m as u64))
            .collect();
        let copies = perturber.perturb_batch(w.as_slice(), &seeds, config.elapsed_seconds);
        let shape = w.shape().clone();
        trial_weights.push(
            copies
                .into_iter()
                .map(|data| Ok(Tensor::from_vec(shape.clone(), data)?))
                .collect::<Result<Vec<Tensor>>>()?,
        );
    }

    let mut acts = Acts::Shared(data.images().clone());
    let mut m = 0usize;
    for layer in network.layers() {
        if layer.has_weights() {
            acts = apply_weighted(layer, acts, &trial_weights[m], span, config.precision)?;
            m += 1;
        } else {
            acts = match acts {
                Acts::Shared(x) => Acts::Shared(layer.infer(&x)?),
                Acts::PerTrial(xs) => Acts::PerTrial(
                    xs.iter()
                        .map(|x| layer.infer(x))
                        .collect::<Result<Vec<Tensor>>>()?,
                ),
            };
        }
    }

    match acts {
        // No weighted layers at all: every chip instance is the clean one.
        Acts::Shared(logits) => {
            let acc = accuracy(&argmax_rows(&logits), data.labels())?;
            Ok(vec![acc; span])
        }
        Acts::PerTrial(all_logits) => all_logits
            .iter()
            .map(|logits| accuracy(&argmax_rows(logits), data.labels()))
            .collect(),
    }
}

/// Applies a weighted layer (conv or linear) to the activations, fusing
/// all trials into one GEMM while they still share activations.
fn apply_weighted(
    layer: &Layer,
    acts: Acts,
    weights: &[Tensor],
    span: usize,
    precision: Precision,
) -> Result<Acts> {
    debug_assert_eq!(weights.len(), span);
    match layer {
        Layer::Conv2d(l) => match acts {
            Acts::Shared(x) => Ok(Acts::PerTrial(conv_stacked(
                &x,
                weights,
                &l.bias.value,
                &l.params,
                precision,
            )?)),
            Acts::PerTrial(xs) => Ok(Acts::PerTrial(
                xs.iter()
                    .zip(weights)
                    .map(|(x, w)| conv_single(x, w, &l.bias.value, &l.params, precision))
                    .collect::<Result<Vec<Tensor>>>()?,
            )),
        },
        Layer::Linear(l) => match acts {
            Acts::Shared(x) => Ok(Acts::PerTrial(linear_stacked(
                &x,
                weights,
                &l.bias.value,
                precision,
            )?)),
            Acts::PerTrial(xs) => Ok(Acts::PerTrial(
                xs.iter()
                    .zip(weights)
                    .map(|(x, w)| linear_single(x, w, &l.bias.value, precision))
                    .collect::<Result<Vec<Tensor>>>()?,
            )),
        },
        _ => Err(DnnError::InvalidTraining(
            "apply_weighted called on a weightless layer".into(),
        )),
    }
}

/// Argmax per logits row, first occurrence on ties — the same rule as
/// `Network::predict`.
fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let (n, c) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        let row = &logits.as_slice()[r * c..(r + 1) * c];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(best);
    }
    out
}

/// Convolution over shared activations with all trial weights stacked as
/// extra output channels: one `(T*c_out, ckk) x (ckk, n*pc)` GEMM, then
/// per-trial row-block extraction with the usual bias add.
fn conv_stacked(
    x: &Tensor,
    weights: &[Tensor],
    bias: &Tensor,
    params: &Conv2dParams,
    precision: Precision,
) -> Result<Vec<Tensor>> {
    let span = weights.len();
    let geom = &params.geom;
    let n = x.shape().dims()[0];
    let cols = im2col_batch(x, geom)?; // (ckk, n*pc)
    let ckk = geom.patch_rows();
    let pc = geom.patch_cols();
    let ncols = n * pc;
    let c_out = params.out_channels;
    let prod: StackedProduct = match precision {
        Precision::F32 => {
            let mut big_w = Vec::with_capacity(span * c_out * ckk);
            for w in weights {
                big_w.extend_from_slice(w.as_slice());
            }
            let mut out = vec![0.0f32; span * c_out * ncols];
            gemm_f32(span * c_out, ckk, ncols, &big_w, cols.as_slice(), &mut out);
            StackedProduct::F32(out)
        }
        Precision::Int8 => {
            let (q_cols, s_cols) = quantize_symmetric(cols.as_slice());
            let mut big_q = Vec::with_capacity(span * c_out * ckk);
            let mut scales = Vec::with_capacity(span);
            for w in weights {
                let (q_w, s_w) = quantize_symmetric(w.as_slice());
                big_q.extend_from_slice(&q_w);
                scales.push(s_w * s_cols);
            }
            let mut acc = vec![0i32; span * c_out * ncols];
            gemm_i8(span * c_out, ckk, ncols, &big_q, &q_cols, &mut acc);
            StackedProduct::I32(acc, scales)
        }
    };
    let out_plane = c_out * pc;
    (0..span)
        .map(|t| {
            let mut out_t = vec![0.0f32; n * out_plane];
            for s in 0..n {
                for c in 0..c_out {
                    let b = bias.as_slice()[c];
                    let row_base = (t * c_out + c) * ncols + s * pc;
                    let dst = &mut out_t[s * out_plane + c * pc..s * out_plane + (c + 1) * pc];
                    match &prod {
                        StackedProduct::F32(big) => {
                            for (d, &v) in dst.iter_mut().zip(&big[row_base..row_base + pc]) {
                                *d = v + b;
                            }
                        }
                        StackedProduct::I32(acc, scales) => {
                            let scale = scales[t];
                            for (d, &v) in dst.iter_mut().zip(&acc[row_base..row_base + pc]) {
                                *d = v as f32 * scale + b;
                            }
                        }
                    }
                }
            }
            Ok(Tensor::from_vec(params.output_shape(n), out_t)?)
        })
        .collect()
}

/// Raw output of a stacked GEMM: f32, or i32 with per-trial dequant
/// scales (weight scale x activation scale).
enum StackedProduct {
    F32(Vec<f32>),
    I32(Vec<i32>, Vec<f32>),
}

/// Dense layer over shared activations with all trial weights stacked as
/// extra output columns: one `(n, in) x (in, T*out)` GEMM, then per-trial
/// column-block extraction with the usual bias add.
fn linear_stacked(
    x: &Tensor,
    weights: &[Tensor],
    bias: &Tensor,
    precision: Precision,
) -> Result<Vec<Tensor>> {
    let span = weights.len();
    let (n, in_dim) = (x.shape().dims()[0], x.shape().dims()[1]);
    let out_dim = weights[0].shape().dims()[1];
    let wide = span * out_dim;
    let cat_weight = |srcs: &[Tensor]| -> Vec<f32> {
        let mut cat = vec![0.0f32; in_dim * wide];
        for (t, w) in srcs.iter().enumerate() {
            let ws = w.as_slice();
            for p in 0..in_dim {
                cat[p * wide + t * out_dim..p * wide + (t + 1) * out_dim]
                    .copy_from_slice(&ws[p * out_dim..(p + 1) * out_dim]);
            }
        }
        cat
    };
    let prod: StackedProduct = match precision {
        Precision::F32 => {
            let cat = cat_weight(weights);
            let mut out = vec![0.0f32; n * wide];
            gemm_f32(n, in_dim, wide, x.as_slice(), &cat, &mut out);
            StackedProduct::F32(out)
        }
        Precision::Int8 => {
            let (q_x, s_x) = quantize_symmetric(x.as_slice());
            let mut q_cat = vec![0i8; in_dim * wide];
            let mut scales = Vec::with_capacity(span);
            for (t, w) in weights.iter().enumerate() {
                let (q_w, s_w) = quantize_symmetric(w.as_slice());
                scales.push(s_w * s_x);
                for p in 0..in_dim {
                    q_cat[p * wide + t * out_dim..p * wide + (t + 1) * out_dim]
                        .copy_from_slice(&q_w[p * out_dim..(p + 1) * out_dim]);
                }
            }
            let mut acc = vec![0i32; n * wide];
            gemm_i8(n, in_dim, wide, &q_x, &q_cat, &mut acc);
            StackedProduct::I32(acc, scales)
        }
    };
    (0..span)
        .map(|t| {
            let mut out_t = vec![0.0f32; n * out_dim];
            for r in 0..n {
                for (o, d) in out_t[r * out_dim..(r + 1) * out_dim].iter_mut().enumerate() {
                    let v = match &prod {
                        StackedProduct::F32(big) => big[r * wide + t * out_dim + o],
                        StackedProduct::I32(acc, scales) => {
                            acc[r * wide + t * out_dim + o] as f32 * scales[t]
                        }
                    };
                    *d = v + bias.as_slice()[o];
                }
            }
            Ok(Tensor::from_vec(Shape::d2(n, out_dim), out_t)?)
        })
        .collect()
}

/// Single-trial convolution after divergence: the f32 form is exactly
/// `conv2d_infer`; the int8 form quantizes this trial's activations and
/// weight with per-tensor scales.
fn conv_single(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: &Conv2dParams,
    precision: Precision,
) -> Result<Tensor> {
    match precision {
        Precision::F32 => Ok(lcda_tensor::ops::conv2d_infer(x, weight, bias, params)?),
        Precision::Int8 => {
            Ok(
                conv_stacked(x, std::slice::from_ref(weight), bias, params, precision)?
                    .pop()
                    .expect("one trial in, one tensor out"),
            )
        }
    }
}

/// Single-trial dense layer after divergence: f32 is exactly the shared
/// `linear_apply`; int8 quantizes both operands.
fn linear_single(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    precision: Precision,
) -> Result<Tensor> {
    match precision {
        Precision::F32 => linear_apply(x, weight, bias),
        Precision::Int8 => Ok(
            linear_stacked(x, std::slice::from_ref(weight), bias, precision)?
                .pop()
                .expect("one trial in, one tensor out"),
        ),
    }
}
