//! # lcda-dnn
//!
//! The DNN substrate of the LCDA reproduction: CNN layers with explicit
//! backward passes, networks assembled from an [`arch::Architecture`]
//! description, a synthetic CIFAR-10-class dataset, the paper's
//! **noise-injection training** method (§III-C) and the **Monte-Carlo**
//! accuracy evaluation under device variation.
//!
//! # Example
//!
//! ```
//! use lcda_dnn::arch::Architecture;
//! use lcda_dnn::dataset::SynthCifar;
//! use lcda_dnn::trainer::{Trainer, TrainConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::tiny_test(); // small 8×8, 4-class net for doc-test speed
//! let data = SynthCifar::generate_classes(64, 8, 4, 9)?;
//! let mut trainer = Trainer::new(arch.build(7)?, TrainConfig::fast_test());
//! let report = trainer.fit(&data)?;
//! assert!(report.final_train_accuracy >= 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;

pub mod arch;
pub mod dataset;
pub mod extra_layers;
mod fused;
pub mod layer;
pub mod mc_eval;
pub mod metrics;
pub mod network;
pub mod trainer;

pub use error::DnnError;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, DnnError>;
