//! Regularization layers: 2-D batch normalization and dropout.
//!
//! The noise-injection training of §III-C benefits from normalization —
//! perturbed weights shift activation statistics, and BatchNorm's
//! per-channel renormalization absorbs part of that shift. Both layers
//! respect the network's train/eval mode.

use crate::layer::Param;
use crate::{DnnError, Result};
use lcda_tensor::rng::SeedRng;
use lcda_tensor::{Shape, Tensor, TensorError};

/// Per-channel batch normalization over NCHW batches.
#[derive(Debug, Clone)]
pub struct BatchNorm2dLayer {
    /// Learnable scale γ (one per channel).
    pub gamma: Param,
    /// Learnable shift β (one per channel).
    pub beta: Param,
    /// Running mean used in eval mode.
    pub running_mean: Vec<f32>,
    /// Running variance used in eval mode.
    pub running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    /// Forward-pass cache: normalized input, inverse std, input shape.
    cache: Option<(Tensor, Vec<f32>, Shape)>,
}

impl BatchNorm2dLayer {
    /// Creates the layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2dLayer {
            gamma: Param {
                value: Tensor::ones(Shape::d1(channels)),
                grad: Tensor::zeros(Shape::d1(channels)),
            },
            beta: Param {
                value: Tensor::zeros(Shape::d1(channels)),
                grad: Tensor::zeros(Shape::d1(channels)),
            },
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn check(&self, input: &Tensor) -> Result<(usize, usize, usize, usize)> {
        if input.shape().rank() != 4 {
            return Err(DnnError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: input.shape().rank(),
                op: "batchnorm2d",
            }));
        }
        let d = input.shape().dims();
        if d[1] != self.gamma.value.len() {
            return Err(DnnError::Tensor(TensorError::ShapeMismatch {
                lhs: input.shape().to_string(),
                rhs: format!("(n, {}, h, w)", self.gamma.value.len()),
                op: "batchnorm2d",
            }));
        }
        Ok((d[0], d[1], d[2], d[3]))
    }

    /// Forward pass; batch statistics in training mode, running
    /// statistics in eval mode.
    ///
    /// # Errors
    ///
    /// Returns shape errors for non-NCHW input.
    #[allow(clippy::needless_range_loop)] // per-channel index form mirrors the math
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let (n, c, h, w) = self.check(input)?;
        let plane = h * w;
        let count = (n * plane) as f32;
        let src = input.as_slice();
        let mut out = vec![0.0f32; src.len()];
        let mut x_hat = vec![0.0f32; src.len()];
        let mut inv_stds = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if training {
                let mut sum = 0.0f32;
                for s in 0..n {
                    let base = (s * c + ch) * plane;
                    sum += src[base..base + plane].iter().sum::<f32>();
                }
                let mean = sum / count;
                let mut var = 0.0f32;
                for s in 0..n {
                    let base = (s * c + ch) * plane;
                    var += src[base..base + plane]
                        .iter()
                        .map(|&x| (x - mean) * (x - mean))
                        .sum::<f32>();
                }
                let var = var / count;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            let g = self.gamma.value.as_slice()[ch];
            let b = self.beta.value.as_slice()[ch];
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in base..base + plane {
                    let xh = (src[i] - mean) * inv_std;
                    x_hat[i] = xh;
                    out[i] = g * xh + b;
                }
            }
        }
        if training {
            self.cache = Some((
                Tensor::from_vec(input.shape().clone(), x_hat)?,
                inv_stds,
                input.shape().clone(),
            ));
        }
        Ok(Tensor::from_vec(input.shape().clone(), out)?)
    }

    /// Immutable eval-mode forward using running statistics: the same
    /// per-element expression as [`BatchNorm2dLayer::forward`] with
    /// `training = false`, so outputs are bit-identical, but nothing is
    /// cached or mutated (needed by the shared-network inference path).
    ///
    /// # Errors
    ///
    /// Returns shape errors for non-NCHW input.
    #[allow(clippy::needless_range_loop)] // per-channel index form mirrors the math
    pub fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let (n, c, h, w) = self.check(input)?;
        let plane = h * w;
        let src = input.as_slice();
        let mut out = vec![0.0f32; src.len()];
        for ch in 0..c {
            let mean = self.running_mean[ch];
            let inv_std = 1.0 / (self.running_var[ch] + self.eps).sqrt();
            let g = self.gamma.value.as_slice()[ch];
            let b = self.beta.value.as_slice()[ch];
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in base..base + plane {
                    let xh = (src[i] - mean) * inv_std;
                    out[i] = g * xh + b;
                }
            }
        }
        Ok(Tensor::from_vec(input.shape().clone(), out)?)
    }

    /// Backward pass (training mode only).
    ///
    /// # Errors
    ///
    /// Returns an error when called before a training-mode forward.
    #[allow(clippy::needless_range_loop)] // per-channel index form mirrors the math
    pub fn backward(&mut self, d_out: &Tensor) -> Result<Tensor> {
        let (x_hat, inv_stds, shape) = self.cache.as_ref().ok_or_else(|| {
            DnnError::InvalidTraining("batchnorm backward before training forward".into())
        })?;
        if d_out.shape() != shape {
            return Err(DnnError::Tensor(TensorError::ShapeMismatch {
                lhs: d_out.shape().to_string(),
                rhs: shape.to_string(),
                op: "batchnorm2d backward",
            }));
        }
        let d = shape.dims();
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let dy = d_out.as_slice();
        let xh = x_hat.as_slice();
        let mut dx = vec![0.0f32; dy.len()];
        for ch in 0..c {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xh = 0.0f32;
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in base..base + plane {
                    sum_dy += dy[i];
                    sum_dy_xh += dy[i] * xh[i];
                }
            }
            self.beta.grad.as_mut_slice()[ch] += sum_dy;
            self.gamma.grad.as_mut_slice()[ch] += sum_dy_xh;
            let g = self.gamma.value.as_slice()[ch];
            let scale = g * inv_stds[ch];
            let mean_dy = sum_dy / count;
            let mean_dy_xh = sum_dy_xh / count;
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in base..base + plane {
                    dx[i] = scale * (dy[i] - mean_dy - xh[i] * mean_dy_xh);
                }
            }
        }
        Ok(Tensor::from_vec(shape.clone(), dx)?)
    }
}

/// Inverted dropout: active only in training mode; eval is the identity.
#[derive(Debug, Clone)]
pub struct DropoutLayer {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    rng: SeedRng,
    mask: Option<Tensor>,
}

impl DropoutLayer {
    /// Creates the layer with a drop probability and a seed for the mask
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidTraining`] for `p` outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(DnnError::InvalidTraining(format!(
                "dropout probability must be in [0, 1), got {p}"
            )));
        }
        Ok(DropoutLayer {
            p,
            rng: SeedRng::new(seed),
            mask: None,
        })
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        if !training || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.chance(f64::from(keep)) {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mask =
            Tensor::from_vec(input.shape().clone(), mask_data).expect("mask matches input shape");
        let out = input.mul(&mask).expect("same shape");
        self.mask = Some(mask);
        out
    }

    /// Backward pass: gradient flows only through kept units.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatch; an eval-mode forward makes
    /// backward the identity.
    pub fn backward(&mut self, d_out: &Tensor) -> Result<Tensor> {
        match &self.mask {
            None => Ok(d_out.clone()),
            Some(mask) => Ok(d_out.mul(mask)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> Tensor {
        let mut rng = SeedRng::new(1);
        Tensor::from_vec(
            Shape::d4(4, 3, 5, 5),
            (0..300).map(|_| rng.uniform(-2.0, 3.0)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn batchnorm_normalizes_training_batches() {
        let mut bn = BatchNorm2dLayer::new(3);
        let x = sample_input();
        let y = bn.forward(&x, true).unwrap();
        // Per-channel mean ≈ 0, var ≈ 1 (γ=1, β=0 initially).
        let d = y.shape().dims();
        let plane = d[2] * d[3];
        for ch in 0..3 {
            let mut vals = Vec::new();
            for s in 0..d[0] {
                let base = (s * 3 + ch) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "ch {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "ch {ch} var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2dLayer::new(3);
        let x = sample_input();
        // Momentum 0.1 → running stats converge as 0.9^k; 80 passes leave
        // <0.1% residual of the initial (0, 1) state.
        for _ in 0..80 {
            bn.forward(&x, true).unwrap();
        }
        let y_eval = bn.forward(&x, false).unwrap();
        let y_train = bn.forward(&x, true).unwrap();
        // After the running stats converge to the (constant) batch stats,
        // eval ≈ train output.
        let max_diff = y_eval
            .as_slice()
            .iter()
            .zip(y_train.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 0.05, "max diff {max_diff}");
    }

    #[test]
    fn batchnorm_infer_matches_eval_forward_bitwise() {
        let mut bn = BatchNorm2dLayer::new(3);
        let x = sample_input();
        for _ in 0..5 {
            bn.forward(&x, true).unwrap();
        }
        let y_eval = bn.forward(&x, false).unwrap();
        let y_infer = bn.infer(&x).unwrap();
        assert_eq!(y_eval.as_slice(), y_infer.as_slice());
    }

    #[test]
    fn batchnorm_gradients_match_finite_differences() {
        let mut bn = BatchNorm2dLayer::new(2);
        let mut rng = SeedRng::new(2);
        let x = Tensor::from_vec(
            Shape::d4(2, 2, 2, 2),
            (0..16).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        )
        .unwrap();
        // Loss = Σ y².
        let loss = |bn: &mut BatchNorm2dLayer, x: &Tensor| -> f32 {
            let y = bn.forward(x, true).unwrap();
            y.as_slice().iter().map(|v| v * v).sum()
        };
        let y = bn.forward(&x, true).unwrap();
        let d_out = y.scale(2.0);
        let dx = bn.backward(&d_out).unwrap();
        let eps = 1e-3f32;
        for idx in [0usize, 5, 11, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            let an = dx.as_slice()[idx];
            assert!(
                (fd - an).abs() < 0.05 * an.abs().max(0.5),
                "x[{idx}]: fd {fd} vs an {an}"
            );
        }
    }

    #[test]
    fn batchnorm_rejects_wrong_shapes() {
        let mut bn = BatchNorm2dLayer::new(3);
        assert!(bn.forward(&Tensor::zeros(Shape::d2(2, 3)), true).is_err());
        assert!(bn
            .forward(&Tensor::zeros(Shape::d4(1, 5, 4, 4)), true)
            .is_err());
        assert!(bn.backward(&Tensor::zeros(Shape::d4(1, 3, 4, 4))).is_err());
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = DropoutLayer::new(0.5, 0).unwrap();
        let x = sample_input();
        let y = d.forward(&x, false);
        assert_eq!(x, y);
        let g = d.backward(&x).unwrap();
        assert_eq!(g, x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = DropoutLayer::new(0.3, 1).unwrap();
        let x = Tensor::ones(Shape::d2(100, 100));
        let y = d.forward(&x, true);
        // Inverted dropout: E[y] = E[x].
        assert!((y.mean() - 1.0).abs() < 0.03, "mean {}", y.mean());
        // Roughly 30% of units dropped.
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count() as f32 / y.len() as f32;
        assert!((dropped - 0.3).abs() < 0.03, "dropped {dropped}");
    }

    #[test]
    fn dropout_backward_masks_gradient() {
        let mut d = DropoutLayer::new(0.5, 2).unwrap();
        let x = Tensor::ones(Shape::d1(64));
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(Shape::d1(64))).unwrap();
        for (gy, yy) in g.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(*gy == 0.0, *yy == 0.0);
        }
    }

    #[test]
    fn dropout_validates_probability() {
        assert!(DropoutLayer::new(1.0, 0).is_err());
        assert!(DropoutLayer::new(-0.1, 0).is_err());
        assert!(DropoutLayer::new(0.0, 0).is_ok());
    }
}
