//! Monte-Carlo accuracy evaluation under device variation.
//!
//! Implements the evaluation method of Yan et al. (ASP-DAC'21), which the
//! LCDA paper uses as its DNN performance evaluator: sample many chip
//! instances (weight perturbations), measure test accuracy on each, and
//! report the distribution.

use crate::dataset::SynthCifar;
use crate::metrics::accuracy;
use crate::network::Network;
use crate::Result;
use lcda_variation::montecarlo::{stream_seed, try_run_parallel, McStats, TryRunError};
use lcda_variation::weights::WeightPerturber;
use lcda_variation::VariationConfig;

/// Numeric precision of the Monte-Carlo inference forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full f32 inference (bit-identical to the training forward pass).
    F32,
    /// Int8 inference: per-tensor symmetric quantization of weights and
    /// activations with exact i32 accumulation — models the low-precision
    /// readout of a CiM crossbar. Deterministic, but numerically distinct
    /// from f32, so eval-cache fingerprints must (and do) distinguish it.
    Int8,
}

/// How Monte-Carlo trials are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum McStrategy {
    /// Clone the network once per trial and run a full forward pass per
    /// chip instance. Simple, and the reference the fused path is pinned
    /// against.
    PerTrial,
    /// Batch all trial-perturbed weight matrices of a layer into one GEMM
    /// (see [`crate::fused`]). Bit-identical to [`McStrategy::PerTrial`]
    /// in f32, just faster.
    Fused,
}

/// Configuration of a Monte-Carlo accuracy evaluation.
#[derive(Debug, Clone)]
pub struct McEvalConfig {
    /// Number of simulated chip instances.
    pub trials: u32,
    /// The device-variation corner.
    pub variation: VariationConfig,
    /// Base seed; trial `t` uses a seed derived from it.
    pub seed: u64,
    /// Time since programming, seconds (retention drift applies when the
    /// corner configures it; 0 = read immediately).
    pub elapsed_seconds: f64,
    /// Worker threads for the trial fan-out. Every thread count — `1`
    /// included — produces bit-identical statistics, because each trial
    /// derives its own seed and runs on its own copy of the network; the
    /// knob only trades wall-clock for cores.
    pub threads: usize,
    /// Trial execution strategy (fused batching by default; ignored for
    /// int8, which always runs on the fused engine).
    pub strategy: McStrategy,
    /// Inference precision (f32 by default; int8 is opt-in).
    pub precision: Precision,
}

impl Default for McEvalConfig {
    fn default() -> Self {
        McEvalConfig {
            trials: 16,
            variation: VariationConfig::rram_moderate(),
            seed: 0,
            elapsed_seconds: 0.0,
            threads: 1,
            strategy: McStrategy::Fused,
            precision: Precision::F32,
        }
    }
}

impl McEvalConfig {
    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the trial execution strategy (builder style).
    #[must_use]
    pub fn with_strategy(mut self, strategy: McStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the inference precision (builder style).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// Evaluates the clean (no-variation) accuracy of a network on a dataset.
///
/// # Errors
///
/// Propagates tensor/shape errors.
pub fn clean_accuracy(network: &mut Network, data: &SynthCifar) -> Result<f32> {
    let preds = network.predict(data.images())?;
    accuracy(&preds, data.labels())
}

/// Runs the Monte-Carlo evaluation: for each trial, perturb the weight
/// matrices the way crossbar programming would, measure accuracy, restore
/// the clean weights.
///
/// With [`McStrategy::Fused`] (the default) or [`Precision::Int8`], trials
/// run on the fused engine ([`crate::fused`]), which batches every trial's
/// perturbed weights into one GEMM per layer; its f32 results are
/// bit-identical to the per-trial path below. With
/// [`McStrategy::PerTrial`] in f32, trials fan out across `config.threads`
/// workers via [`lcda_variation::montecarlo::try_run_parallel`], each on
/// its own clone of the network, so any thread count is bit-identical to
/// the sequential path. Each weight matrix within a trial draws from its
/// own random stream ([`stream_seed`]), so no `(trial, matrix)` pair ever
/// aliases another.
///
/// # Errors
///
/// Propagates dataset/tensor errors; zero trials yield an error from the
/// statistics layer.
pub fn mc_accuracy(
    network: &mut Network,
    data: &SynthCifar,
    config: &McEvalConfig,
) -> Result<McStats> {
    if config.strategy == McStrategy::Fused || config.precision == Precision::Int8 {
        return crate::fused::mc_accuracy_fused(network, data, config);
    }
    let w_max = network.max_abs_weight().max(1e-3);
    let perturber = WeightPerturber::new(config.variation.clone(), w_max);
    let template: &Network = network;
    let trial = |_t: u32, seed: u64| -> Result<f32> {
        // Every trial programs its own chip instance: clone the clean
        // network, perturb the clone, and measure it. The borrowed
        // template is never mutated, which is what makes the fan-out safe
        // and order-independent.
        let mut chip = template.clone();
        let mut matrix_index = 0u64;
        chip.perturb_weight_matrices(|w| {
            perturber.perturb_after(w, stream_seed(seed, matrix_index), config.elapsed_seconds);
            matrix_index += 1;
        });
        let preds = chip.predict(data.images())?;
        accuracy(&preds, data.labels())
    };
    try_run_parallel(config.trials, config.seed, config.threads, trial).map_err(|e| match e {
        TryRunError::ZeroTrials => {
            crate::DnnError::InvalidTraining("monte-carlo evaluation needs trials > 0".into())
        }
        TryRunError::Metric(err) => err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::trainer::{TrainConfig, Trainer};

    fn trained_network_and_data() -> (Network, SynthCifar) {
        let data = SynthCifar::generate_classes(48, 8, 4, 21).unwrap();
        let net = Architecture::tiny_test().build(6).unwrap();
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs = 8;
        let mut t = Trainer::new(net, cfg);
        t.fit(&data).unwrap();
        (t.into_network(), data)
    }

    #[test]
    fn ideal_variation_matches_clean_accuracy() {
        let (mut net, data) = trained_network_and_data();
        let clean = clean_accuracy(&mut net, &data).unwrap();
        let stats = mc_accuracy(
            &mut net,
            &data,
            &McEvalConfig {
                trials: 3,
                variation: VariationConfig::ideal(),
                ..McEvalConfig::default()
            },
        )
        .unwrap();
        assert!((stats.mean - clean).abs() < 1e-6);
        assert_eq!(stats.std, 0.0);
    }

    #[test]
    fn variation_degrades_accuracy_on_average() {
        let (mut net, data) = trained_network_and_data();
        let clean = clean_accuracy(&mut net, &data).unwrap();
        let stats = mc_accuracy(
            &mut net,
            &data,
            &McEvalConfig {
                trials: 12,
                variation: VariationConfig::rram_severe(),
                seed: 1,
                ..McEvalConfig::default()
            },
        )
        .unwrap();
        assert!(
            stats.mean <= clean + 0.05,
            "severe variation should not help: clean={clean} mc={}",
            stats.mean
        );
        assert!(stats.std >= 0.0);
    }

    #[test]
    fn weights_restored_after_evaluation() {
        let (mut net, data) = trained_network_and_data();
        let before = net.snapshot_weights();
        mc_accuracy(&mut net, &data, &McEvalConfig::default()).unwrap();
        assert_eq!(net.snapshot_weights(), before);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut net, data) = trained_network_and_data();
        let cfg = McEvalConfig {
            trials: 5,
            seed: 9,
            ..McEvalConfig::default()
        };
        let a = mc_accuracy(&mut net, &data, &cfg).unwrap();
        let b = mc_accuracy(&mut net, &data, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn any_thread_count_is_bit_identical_to_sequential() {
        let (mut net, data) = trained_network_and_data();
        let base = McEvalConfig {
            trials: 8,
            seed: 4,
            ..McEvalConfig::default()
        };
        let seq = mc_accuracy(&mut net, &data, &base).unwrap();
        for threads in [2, 3, 8, 64] {
            let par = mc_accuracy(&mut net, &data, &base.clone().with_threads(threads)).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_behaves_as_one() {
        let (mut net, data) = trained_network_and_data();
        let cfg = McEvalConfig {
            trials: 3,
            ..McEvalConfig::default()
        };
        let one = mc_accuracy(&mut net, &data, &cfg).unwrap();
        let zero = mc_accuracy(&mut net, &data, &cfg.clone().with_threads(0)).unwrap();
        assert_eq!(one, zero);
    }

    #[test]
    fn zero_trials_rejected() {
        let (mut net, data) = trained_network_and_data();
        let cfg = McEvalConfig {
            trials: 0,
            ..McEvalConfig::default()
        };
        assert!(mc_accuracy(&mut net, &data, &cfg).is_err());
        let per_trial = cfg.with_strategy(McStrategy::PerTrial);
        assert!(mc_accuracy(&mut net, &data, &per_trial).is_err());
    }

    #[test]
    fn fused_is_bit_identical_to_per_trial_sequential() {
        let (mut net, data) = trained_network_and_data();
        let base = McEvalConfig {
            trials: 7,
            seed: 13,
            ..McEvalConfig::default()
        };
        let reference = mc_accuracy(
            &mut net,
            &data,
            &base.clone().with_strategy(McStrategy::PerTrial),
        )
        .unwrap();
        for threads in [1, 2, 4] {
            let fused = mc_accuracy(
                &mut net,
                &data,
                &base
                    .clone()
                    .with_strategy(McStrategy::Fused)
                    .with_threads(threads),
            )
            .unwrap();
            assert_eq!(reference, fused, "fused threads={threads}");
        }
    }

    #[test]
    fn per_trial_threads_match_fused() {
        // Cross-check the other axis: the per-trial fan-out at several
        // thread counts also lands exactly on the fused result.
        let (mut net, data) = trained_network_and_data();
        let base = McEvalConfig {
            trials: 6,
            seed: 2,
            ..McEvalConfig::default()
        };
        let fused = mc_accuracy(&mut net, &data, &base).unwrap();
        for threads in [1, 2, 4] {
            let per_trial = mc_accuracy(
                &mut net,
                &data,
                &base
                    .clone()
                    .with_strategy(McStrategy::PerTrial)
                    .with_threads(threads),
            )
            .unwrap();
            assert_eq!(fused, per_trial, "per-trial threads={threads}");
        }
    }

    #[test]
    fn int8_is_deterministic_and_thread_invariant() {
        let (mut net, data) = trained_network_and_data();
        let cfg = McEvalConfig {
            trials: 5,
            seed: 3,
            precision: Precision::Int8,
            ..McEvalConfig::default()
        };
        let a = mc_accuracy(&mut net, &data, &cfg).unwrap();
        let b = mc_accuracy(&mut net, &data, &cfg).unwrap();
        assert_eq!(a, b);
        for threads in [2, 4] {
            let par = mc_accuracy(&mut net, &data, &cfg.clone().with_threads(threads)).unwrap();
            assert_eq!(a, par, "int8 threads={threads}");
        }
        // Int8 routes to the fused engine regardless of the strategy knob.
        let forced = mc_accuracy(
            &mut net,
            &data,
            &cfg.clone().with_strategy(McStrategy::PerTrial),
        )
        .unwrap();
        assert_eq!(a, forced);
    }

    #[test]
    fn int8_tracks_f32_under_ideal_variation() {
        let (mut net, data) = trained_network_and_data();
        let clean = clean_accuracy(&mut net, &data).unwrap();
        let stats = mc_accuracy(
            &mut net,
            &data,
            &McEvalConfig {
                trials: 2,
                variation: VariationConfig::ideal(),
                precision: Precision::Int8,
                ..McEvalConfig::default()
            },
        )
        .unwrap();
        // Quantization costs some accuracy but must stay in the same
        // ballpark on this easy synthetic task.
        assert!(
            (stats.mean - clean).abs() < 0.25,
            "int8 mean {} strayed too far from f32 clean {clean}",
            stats.mean
        );
    }

    #[test]
    fn int8_weights_restored_after_evaluation() {
        let (mut net, data) = trained_network_and_data();
        let before = net.snapshot_weights();
        let cfg = McEvalConfig {
            trials: 3,
            precision: Precision::Int8,
            ..McEvalConfig::default()
        };
        mc_accuracy(&mut net, &data, &cfg).unwrap();
        assert_eq!(net.snapshot_weights(), before);
    }
}

#[cfg(test)]
mod retention_tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::trainer::{TrainConfig, Trainer};
    use lcda_variation::RetentionConfig;

    #[test]
    fn accuracy_decays_with_retention_time() {
        let data = SynthCifar::generate_classes(48, 8, 4, 41).unwrap();
        let net = Architecture::tiny_test().build(12).unwrap();
        let mut cfg = TrainConfig::fast_test();
        cfg.epochs = 8;
        let mut t = Trainer::new(net, cfg);
        t.fit(&data).unwrap();
        let mut net = t.into_network();

        let variation = VariationConfig::ideal().with_retention(RetentionConfig {
            nu: 0.2, // exaggerated drift so the tiny model shows the effect
            t0_seconds: 1.0,
        });
        let acc_at = |net: &mut crate::network::Network, secs: f64| {
            mc_accuracy(
                net,
                &data,
                &McEvalConfig {
                    trials: 4,
                    variation: variation.clone(),
                    seed: 5,
                    elapsed_seconds: secs,
                    ..McEvalConfig::default()
                },
            )
            .unwrap()
            .mean
        };
        let fresh = acc_at(&mut net, 0.0);
        let aged = acc_at(&mut net, 3600.0 * 24.0 * 365.0);
        assert!(
            aged <= fresh + 1e-6,
            "year-old weights should not read better: {aged} vs {fresh}"
        );
    }
}
