use lcda_tensor::TensorError;
use std::fmt;

/// Error type for network construction, training and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DnnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An architecture description was invalid.
    InvalidArchitecture(String),
    /// A dataset request was invalid (zero samples, bad split, …).
    InvalidDataset(String),
    /// A training configuration value was invalid.
    InvalidTraining(String),
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            DnnError::InvalidArchitecture(msg) => write!(f, "invalid architecture: {msg}"),
            DnnError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            DnnError::InvalidTraining(msg) => write!(f, "invalid training config: {msg}"),
        }
    }
}

impl std::error::Error for DnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DnnError {
    fn from(e: TensorError) -> Self {
        DnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        use std::error::Error;
        let e = DnnError::from(TensorError::InvalidArgument("k".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("tensor error"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DnnError>();
    }
}
