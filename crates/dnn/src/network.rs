//! A feed-forward network: an ordered stack of [`Layer`]s with training
//! and weight-perturbation support.

use crate::layer::Layer;
use crate::Result;
use lcda_tensor::ops::cross_entropy_loss;
use lcda_tensor::optim::ParamOptimizer;
use lcda_tensor::Tensor;

/// A trainable feed-forward network.
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Layer>,
    training: bool,
}

impl Network {
    /// Creates a network from an ordered layer stack (in training mode).
    pub fn new(layers: Vec<Layer>) -> Self {
        Network {
            layers,
            training: true,
        }
    }

    /// Switches between training mode (batch statistics, dropout active)
    /// and eval mode.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the network is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// The layers (read-only).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        let training = self.training;
        for layer in &mut self.layers {
            x = layer.forward(&x, training)?;
        }
        Ok(x)
    }

    /// Backward pass; accumulates gradients into every parameter.
    ///
    /// # Errors
    ///
    /// Returns an error when called before `forward`.
    pub fn backward(&mut self, d_logits: &Tensor) -> Result<()> {
        let mut g = d_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(())
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.visit_params(|p| {
                p.grad.map_inplace(|_| 0.0);
            });
        }
    }

    /// One supervised training step on a batch: forward, loss, backward,
    /// optimizer update. Returns the batch loss.
    ///
    /// The optimizer's slots must have been registered with
    /// [`Network::register_params`] first.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors.
    pub fn train_step<O: ParamOptimizer>(
        &mut self,
        input: &Tensor,
        labels: &[usize],
        opt: &mut O,
    ) -> Result<f32> {
        self.zero_grad();
        let logits = self.forward(input)?;
        let (loss, d_logits) = cross_entropy_loss(&logits, labels)?;
        self.backward(&d_logits)?;
        self.apply_grads(opt)?;
        Ok(loss)
    }

    /// Registers every parameter with the optimizer (slot order equals
    /// visit order, which is stable).
    pub fn register_params<O: ParamOptimizer>(&mut self, opt: &mut O) {
        for layer in &mut self.layers {
            layer.visit_params(|p| {
                opt.register(&p.value);
            });
        }
    }

    /// Applies accumulated gradients via the optimizer.
    ///
    /// # Errors
    ///
    /// Propagates optimizer slot errors.
    pub fn apply_grads<O: ParamOptimizer>(&mut self, opt: &mut O) -> Result<()> {
        let mut slot = 0usize;
        let mut result = Ok(());
        for layer in &mut self.layers {
            layer.visit_params(|p| {
                if result.is_ok() {
                    result = opt.step(slot, &mut p.value, &p.grad).map_err(Into::into);
                }
                slot += 1;
            });
        }
        result
    }

    /// Cache-free inference forward pass: bit-identical to an eval-mode
    /// [`Network::forward`] but immutable, so one network can serve many
    /// concurrent evaluation threads without cloning its layer caches.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x)?;
        }
        Ok(x)
    }

    /// Class predictions for a batch (argmax of [`Network::infer`] logits,
    /// first occurrence on ties).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn predict(&self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.infer(input)?;
        let (n, c) = (logits.shape().dims()[0], logits.shape().dims()[1]);
        let mut out = Vec::with_capacity(n);
        for r in 0..n {
            let row = &logits.as_slice()[r * c..(r + 1) * c];
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Snapshots all trainable parameters (flat copies, in
    /// [`Layer::visit_params`] order, so [`Network::restore_weights`]
    /// realigns exactly — including BatchNorm's γ/β).
    pub fn snapshot_weights(&self) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        // visit_params needs &mut; mirror its order on an immutable path.
        for layer in &self.layers {
            match layer {
                Layer::Conv2d(l) => {
                    out.push(l.weight.value.as_slice().to_vec());
                    out.push(l.bias.value.as_slice().to_vec());
                }
                Layer::Linear(l) => {
                    out.push(l.weight.value.as_slice().to_vec());
                    out.push(l.bias.value.as_slice().to_vec());
                }
                Layer::BatchNorm2d(l) => {
                    out.push(l.gamma.value.as_slice().to_vec());
                    out.push(l.beta.value.as_slice().to_vec());
                }
                _ => {}
            }
        }
        out
    }

    /// Restores weights from a snapshot taken by
    /// [`Network::snapshot_weights`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the network's parameters.
    pub fn restore_weights(&mut self, snapshot: &[Vec<f32>]) {
        let mut i = 0usize;
        for layer in &mut self.layers {
            layer.visit_params(|p| {
                let src = &snapshot[i];
                assert_eq!(src.len(), p.value.len(), "snapshot mismatch");
                p.value.as_mut_slice().copy_from_slice(src);
                i += 1;
            });
        }
        assert_eq!(i, snapshot.len(), "snapshot length mismatch");
    }

    /// Applies `f` to every *weight matrix* buffer (not biases) — the
    /// tensors that live in crossbars and suffer device variation. Biases
    /// are implemented digitally and stay exact.
    pub fn perturb_weight_matrices<F: FnMut(&mut [f32])>(&mut self, mut f: F) {
        for layer in &mut self.layers {
            match layer {
                Layer::Conv2d(l) => f(l.weight.value.as_mut_slice()),
                Layer::Linear(l) => f(l.weight.value.as_mut_slice()),
                _ => {}
            }
        }
    }

    /// The crossbar-mapped weight matrices (not biases) in network order —
    /// the same order and set as [`Network::perturb_weight_matrices`],
    /// which is what keeps the fused Monte-Carlo engine's per-matrix
    /// `stream_seed` indices aligned with the per-trial path.
    pub fn weight_matrices(&self) -> Vec<&Tensor> {
        self.layers
            .iter()
            .filter_map(|layer| match layer {
                Layer::Conv2d(l) => Some(&l.weight.value),
                Layer::Linear(l) => Some(&l.weight.value),
                _ => None,
            })
            .collect()
    }

    /// The largest absolute weight value across all weight matrices —
    /// used as the crossbar clipping range `w_max`.
    pub fn max_abs_weight(&self) -> f32 {
        let mut m = 0.0f32;
        for layer in &self.layers {
            let w = match layer {
                Layer::Conv2d(l) => l.weight.value.as_slice(),
                Layer::Linear(l) => l.weight.value.as_slice(),
                _ => continue,
            };
            for &x in w {
                m = m.max(x.abs());
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use lcda_tensor::optim::Sgd;
    use lcda_tensor::rng::SeedRng;
    use lcda_tensor::Shape;

    fn tiny_net() -> Network {
        Architecture::tiny_test().build(1).unwrap()
    }

    fn random_batch(n: usize, rng: &mut SeedRng) -> (Tensor, Vec<usize>) {
        let x = Tensor::from_vec(
            Shape::d4(n, 3, 8, 8),
            (0..n * 3 * 64).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        )
        .unwrap();
        let y = (0..n).map(|i| i % 4).collect();
        (x, y)
    }

    #[test]
    fn forward_shapes() {
        let mut net = tiny_net();
        let x = Tensor::ones(Shape::d4(3, 3, 8, 8));
        let logits = net.forward(&x).unwrap();
        assert_eq!(logits.shape().dims(), &[3, 4]);
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = tiny_net();
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        net.register_params(&mut opt);
        let mut rng = SeedRng::new(2);
        let (x, y) = random_batch(8, &mut rng);
        let first = net.train_step(&x, &y, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = net.train_step(&x, &y, &mut opt).unwrap();
        }
        assert!(
            last < first * 0.7,
            "loss should fall markedly: {first} -> {last}"
        );
    }

    #[test]
    fn memorizes_small_batch() {
        let mut net = tiny_net();
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        net.register_params(&mut opt);
        let mut rng = SeedRng::new(3);
        let (x, y) = random_batch(4, &mut rng);
        for _ in 0..80 {
            net.train_step(&x, &y, &mut opt).unwrap();
        }
        assert_eq!(net.predict(&x).unwrap(), y);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut net = tiny_net();
        let snap = net.snapshot_weights();
        net.perturb_weight_matrices(|w| {
            for x in w.iter_mut() {
                *x += 1.0;
            }
        });
        assert_ne!(net.snapshot_weights(), snap);
        net.restore_weights(&snap);
        assert_eq!(net.snapshot_weights(), snap);
    }

    #[test]
    fn perturbation_skips_biases() {
        let mut net = tiny_net();
        let before = net.snapshot_weights();
        net.perturb_weight_matrices(|w| {
            for x in w.iter_mut() {
                *x = 99.0;
            }
        });
        let after = net.snapshot_weights();
        // Snapshot interleaves weight,bias,weight,bias,…
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if i % 2 == 0 {
                assert!(a.iter().all(|&x| x == 99.0), "weight {i} perturbed");
            } else {
                assert_eq!(b, a, "bias {i} untouched");
            }
        }
    }

    #[test]
    fn param_count_matches_architecture() {
        let a = Architecture::tiny_test();
        let net = a.build(0).unwrap();
        // weight_count counts matrices only; network adds biases.
        let biases: u64 = 4 + 8 + 16 + 4;
        assert_eq!(net.param_count() as u64, a.weight_count() + biases);
    }

    #[test]
    fn max_abs_weight_positive_after_init() {
        let net = tiny_net();
        assert!(net.max_abs_weight() > 0.0);
    }

    #[test]
    fn infer_matches_eval_forward_bitwise() {
        let mut net = tiny_net();
        let mut rng = SeedRng::new(9);
        let (x, _) = random_batch(3, &mut rng);
        net.set_training(false);
        let via_forward = net.forward(&x).unwrap();
        let via_infer = net.infer(&x).unwrap();
        assert_eq!(via_forward.as_slice(), via_infer.as_slice());
    }

    #[test]
    fn weight_matrices_match_perturbation_order() {
        let mut net = Architecture::tiny_test()
            .with_batch_norm()
            .build(5)
            .unwrap();
        let via_accessor: Vec<Vec<f32>> = net
            .weight_matrices()
            .iter()
            .map(|w| w.as_slice().to_vec())
            .collect();
        let mut via_perturb = Vec::new();
        net.perturb_weight_matrices(|w| via_perturb.push(w.to_vec()));
        assert_eq!(via_accessor, via_perturb);
    }

    #[test]
    fn zero_grad_clears() {
        let mut net = tiny_net();
        let mut opt = Sgd::new(0.01);
        net.register_params(&mut opt);
        let mut rng = SeedRng::new(4);
        let (x, y) = random_batch(2, &mut rng);
        net.train_step(&x, &y, &mut opt).unwrap();
        net.zero_grad();
        let mut all_zero = true;
        for layer in &mut net.layers {
            layer.visit_params(|p| {
                if p.grad.as_slice().iter().any(|&g| g != 0.0) {
                    all_zero = false;
                }
            });
        }
        assert!(all_zero);
    }
}

#[cfg(test)]
mod batchnorm_snapshot_tests {
    use super::*;
    use crate::arch::Architecture;

    #[test]
    fn snapshot_restore_aligns_with_batchnorm() {
        // Regression test: snapshot/restore must mirror visit_params order
        // exactly, including BatchNorm γ/β (found via the reliability
        // example panicking in noise-injection training).
        let mut net = Architecture::tiny_test()
            .with_batch_norm()
            .build(1)
            .unwrap();
        let snap = net.snapshot_weights();
        net.restore_weights(&snap); // must not panic
        net.perturb_weight_matrices(|w| {
            for x in w.iter_mut() {
                *x += 0.5;
            }
        });
        net.restore_weights(&snap);
        assert_eq!(net.snapshot_weights(), snap);
    }
}
