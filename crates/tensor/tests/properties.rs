//! Property-based tests of the tensor algebra and NN kernels.

use lcda_tensor::ops::{
    conv2d_forward, conv2d_forward_direct, cross_entropy_loss, gemm_f32, gemm_ref,
    maxpool2_forward, softmax_rows, Conv2dParams, ConvGeometry,
};
use lcda_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(Shape::d2(rows, cols), v).unwrap())
}

proptest! {
    /// (A·B)ᵀ == Bᵀ·Aᵀ
    #[test]
    fn matmul_transpose_identity(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// A·(B + C) == A·B + A·C
    #[test]
    fn matmul_distributes(a in arb_matrix(2, 3), b in arb_matrix(3, 3), c in arb_matrix(3, 3)) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// axpy is linear: x + α·y elementwise.
    #[test]
    fn axpy_matches_elementwise(
        x in prop::collection::vec(-5.0f32..5.0, 16),
        y in prop::collection::vec(-5.0f32..5.0, 16),
        alpha in -3.0f32..3.0,
    ) {
        let mut t = Tensor::from_slice(&x);
        let u = Tensor::from_slice(&y);
        t.axpy(alpha, &u).unwrap();
        for ((got, &xi), &yi) in t.as_slice().iter().zip(&x).zip(&y) {
            prop_assert!((got - (xi + alpha * yi)).abs() < 1e-4);
        }
    }

    /// im2col convolution equals the direct nested-loop reference for
    /// arbitrary geometries and data.
    #[test]
    fn conv_paths_agree(
        c_in in 1usize..4,
        c_out in 1usize..4,
        size in 4usize..9,
        k in prop::sample::select(vec![1usize, 3]),
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let mut rng = lcda_tensor::rng::SeedRng::new(seed);
        let geom = ConvGeometry::new(c_in, size, size, k, stride, k / 2).unwrap();
        let params = Conv2dParams::new(geom, c_out).unwrap();
        let input = Tensor::from_vec(
            Shape::d4(1, c_in, size, size),
            (0..c_in * size * size).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        ).unwrap();
        let weight = Tensor::from_vec(
            params.weight_shape(),
            (0..c_out * geom.patch_rows()).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        ).unwrap();
        let bias = Tensor::from_vec(
            Shape::d1(c_out),
            (0..c_out).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        ).unwrap();
        let (fast, _) = conv2d_forward(&input, &weight, &bias, &params).unwrap();
        let slow = conv2d_forward_direct(&input, &weight, &bias, &params).unwrap();
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Softmax rows are probability distributions for arbitrary logits.
    #[test]
    fn softmax_rows_are_distributions(m in arb_matrix(3, 5)) {
        let p = softmax_rows(&m).unwrap();
        for r in 0..3 {
            let row = p.row(r).unwrap();
            prop_assert!((row.sum() - 1.0).abs() < 1e-4);
            prop_assert!(row.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// Cross-entropy gradient rows sum to ~0 (softmax shift invariance).
    #[test]
    fn ce_gradient_rows_sum_zero(m in arb_matrix(4, 6), labels in prop::collection::vec(0usize..6, 4)) {
        let (_, grad) = cross_entropy_loss(&m, &labels).unwrap();
        for r in 0..4 {
            prop_assert!(grad.row(r).unwrap().sum().abs() < 1e-5);
        }
    }

    /// Max pooling never invents values: every output equals some input.
    #[test]
    fn maxpool_outputs_are_inputs(v in prop::collection::vec(-9.0f32..9.0, 36)) {
        let input = Tensor::from_vec(Shape::d4(1, 1, 6, 6), v.clone()).unwrap();
        let (out, arg) = maxpool2_forward(&input).unwrap();
        for (o, &i) in out.as_slice().iter().zip(&arg) {
            prop_assert_eq!(*o, v[i]);
        }
    }

    /// The blocked GEMM is *bit-identical* to the scalar i-k-j reference
    /// for arbitrary shapes — the blocking only regroups which output
    /// elements a pass produces, never any element's summation order.
    #[test]
    fn gemm_blocked_equals_reference_bitwise(
        m in 1usize..20,
        k in 1usize..140,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = lcda_tensor::rng::SeedRng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let mut blocked = vec![0.0f32; m * n];
        gemm_f32(m, k, n, &a, &b, &mut blocked);
        let mut reference = vec![0.0f32; m * n];
        gemm_ref(m, k, n, &a, &b, &mut reference);
        for (x, y) in blocked.iter().zip(&reference) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
        }
    }

    /// Repeated blocked-GEMM calls on the same operands are bit-identical
    /// (no hidden state, no nondeterministic scheduling).
    #[test]
    fn gemm_deterministic_across_calls(
        m in 1usize..12,
        k in 1usize..96,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = lcda_tensor::rng::SeedRng::new(seed.wrapping_add(7));
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let mut first = vec![0.0f32; m * n];
        gemm_f32(m, k, n, &a, &b, &mut first);
        for _ in 0..3 {
            let mut again = vec![0.0f32; m * n];
            gemm_f32(m, k, n, &a, &b, &mut again);
            for (x, y) in first.iter().zip(&again) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
