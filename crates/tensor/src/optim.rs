//! Parameter optimizers for gradient-based training.
//!
//! The trained evaluator uses [`Sgd`] with momentum by default; [`Adam`] is
//! provided for the faster-converging noise-injection fine-tuning phase.

use crate::{Result, Tensor, TensorError};

/// A gradient-descent parameter updater.
///
/// Implementations hold per-parameter state keyed by a slot index assigned
/// with [`ParamOptimizer::register`].
pub trait ParamOptimizer {
    /// Registers a parameter tensor and returns its slot id.
    fn register(&mut self, param: &Tensor) -> usize;

    /// Applies one update step: `param -= f(grad)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `slot` is unknown or shapes mismatch.
    fn step(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl ParamOptimizer for Sgd {
    fn register(&mut self, param: &Tensor) -> usize {
        self.velocity.push(Tensor::zeros(param.shape().clone()));
        self.velocity.len() - 1
    }

    fn step(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) -> Result<()> {
        let v = self
            .velocity
            .get_mut(slot)
            .ok_or(TensorError::IndexOutOfBounds {
                index: slot,
                bound: 0,
            })?;
        if self.weight_decay > 0.0 {
            // grad' = grad + wd * param, folded into the velocity update.
            let mut g = grad.clone();
            g.axpy(self.weight_decay, param)?;
            *v = v.scale(self.momentum);
            v.axpy(1.0, &g)?;
        } else {
            *v = v.scale(self.momentum);
            v.axpy(1.0, grad)?;
        }
        param.axpy(-self.lr, v)
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard `(0.9, 0.999, 1e-8)` hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl ParamOptimizer for Adam {
    fn register(&mut self, param: &Tensor) -> usize {
        self.m.push(Tensor::zeros(param.shape().clone()));
        self.v.push(Tensor::zeros(param.shape().clone()));
        self.m.len() - 1
    }

    fn step(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) -> Result<()> {
        if slot >= self.m.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: slot,
                bound: self.m.len(),
            });
        }
        // Per-step time increments once per slot-0 update so bias correction
        // tracks epochs of full-parameter updates; simpler and adequate here:
        if slot == 0 {
            self.t += 1;
        }
        let t = self.t.max(1) as i32;
        let (b1, b2) = (self.beta1, self.beta2);
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        for ((m_i, v_i), &g) in m
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice())
            .zip(grad.as_slice())
        {
            *m_i = b1 * *m_i + (1.0 - b1) * g;
            *v_i = b2 * *v_i + (1.0 - b2) * g * g;
        }
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        for ((p, &m_i), &v_i) in param
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_slice())
            .zip(v.as_slice())
        {
            let m_hat = m_i / bc1;
            let v_hat = v_i / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSProp (Tieleman & Hinton): per-parameter learning rates from an EMA
/// of squared gradients — a robust default for noise-injection training,
/// where gradient magnitudes fluctuate with the injected perturbation.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    cache: Vec<Tensor>,
}

impl RmsProp {
    /// RMSProp with the standard decay 0.9 and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            decay: 0.9,
            eps: 1e-8,
            cache: Vec::new(),
        }
    }
}

impl ParamOptimizer for RmsProp {
    fn register(&mut self, param: &Tensor) -> usize {
        self.cache.push(Tensor::zeros(param.shape().clone()));
        self.cache.len() - 1
    }

    fn step(&mut self, slot: usize, param: &mut Tensor, grad: &Tensor) -> Result<()> {
        let cache = self
            .cache
            .get_mut(slot)
            .ok_or(TensorError::IndexOutOfBounds {
                index: slot,
                bound: 0,
            })?;
        for ((c, p), &g) in cache
            .as_mut_slice()
            .iter_mut()
            .zip(param.as_mut_slice())
            .zip(grad.as_slice())
        {
            *c = self.decay * *c + (1.0 - self.decay) * g * g;
            *p -= self.lr * g / (c.sqrt() + self.eps);
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    /// Minimizes f(x) = x^2 from x=4 and checks convergence.
    fn converges<O: ParamOptimizer>(mut opt: O, steps: usize) -> f32 {
        let mut x = Tensor::from_slice(&[4.0]);
        let slot = opt.register(&x);
        for _ in 0..steps {
            let g = x.scale(2.0); // d/dx x^2
            opt.step(slot, &mut x, &g).unwrap();
        }
        x.as_slice()[0].abs()
    }

    #[test]
    fn sgd_converges_quadratic() {
        assert!(converges(Sgd::new(0.1), 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_quadratic() {
        assert!(converges(Sgd::with_momentum(0.05, 0.9), 200) < 1e-2);
    }

    #[test]
    fn adam_converges_quadratic() {
        assert!(converges(Adam::new(0.2), 300) < 1e-2);
    }

    #[test]
    fn rmsprop_converges_quadratic() {
        // RMSProp takes ~lr-sized steps regardless of gradient magnitude,
        // so it reaches an lr-sized neighbourhood of the optimum and
        // dithers there.
        assert!(converges(RmsProp::new(0.01), 800) < 0.05);
    }

    #[test]
    fn rmsprop_unknown_slot_rejected() {
        let mut opt = RmsProp::new(0.1);
        let mut x = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[1.0]);
        assert!(opt.step(0, &mut x, &g).is_err());
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        let mut x = Tensor::from_slice(&[2.0]);
        let slot = opt.register(&x);
        let zero_grad = Tensor::zeros(Shape::d1(1));
        for _ in 0..50 {
            opt.step(slot, &mut x, &zero_grad).unwrap();
        }
        assert!(x.as_slice()[0].abs() < 0.2);
    }

    #[test]
    fn unknown_slot_rejected() {
        let mut opt = Sgd::new(0.1);
        let mut x = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[1.0]);
        assert!(opt.step(3, &mut x, &g).is_err());
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }
}
