use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// This is the workhorse value type of the whole workspace: DNN weights,
/// activations, gradients and crossbar conductance matrices are all
/// `Tensor`s. The type is deliberately simple — a `Vec<f32>` plus a
/// [`Shape`] — because the LCDA workloads are small CNNs where clarity and
/// determinism matter more than absolute throughput.
///
/// # Example
///
/// ```
/// use lcda_tensor::{Tensor, Shape};
/// let t = Tensor::zeros(Shape::d2(2, 2));
/// let u = t.map(|x| x + 1.0);
/// assert_eq!(u.sum(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: Shape) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![1.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from a shape and an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal `shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if shape.len() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::d1(data.len()),
            data: data.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index validation errors from [`Shape::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index validation errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new, equal-length shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when lengths differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = self.shape.reshaped(dims)?;
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        self.check_same_shape(other, "zip")?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `alpha * other` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sample standard deviation of the elements (Bessel-corrected,
    /// divides by `n - 1`); `0.0` for fewer than two elements.
    ///
    /// Sample variance is the workspace-wide convention — it matches
    /// `lcda_variation::montecarlo::McStats`, which estimates accuracy
    /// spread from a finite number of Monte-Carlo trials. This method
    /// previously used the population divisor `n`, which silently
    /// disagreed with the Monte-Carlo statistics (see DESIGN.md §15).
    pub fn std(&self) -> f32 {
        if self.data.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.data.iter().map(|&x| (x - m) * (x - m)).sum::<f32>()
            / (self.data.len() - 1) as f32;
        var.sqrt()
    }

    /// Matrix multiplication for rank-2 tensors: `(m,k) x (k,n) -> (m,n)`.
    ///
    /// Runs on the blocked deterministic kernel [`crate::ops::gemm_f32`]:
    /// bit-identical to the scalar i-k-j reference on every call, and with
    /// no zero-skip shortcut, so `0 * NaN` / `0 * inf` products propagate
    /// NaN to the output instead of being silently masked (an earlier fast
    /// path skipped zero lhs elements and hid non-finite rhs values from
    /// the NaN quarantine).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank
    /// 2, and [`TensorError::ShapeMismatch`] when inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "matmul",
            });
        }
        if other.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.shape.rank(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape.dims()[0], self.shape.dims()[1]);
        let (k2, n) = (other.shape.dims()[0], other.shape.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.to_string(),
                rhs: other.shape.to_string(),
                op: "matmul",
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::ops::gemm_f32(m, k, n, &self.data, &other.data, &mut out);
        Ok(Tensor {
            shape: Shape::d2(m, n),
            data: out,
        })
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "transpose",
            });
        }
        let (m, n) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Tensor {
            shape: Shape::d2(n, m),
            data: out,
        })
    }

    /// Row `r` of a rank-2 tensor as a new rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns rank / bounds errors as appropriate.
    pub fn row(&self, r: usize) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "row",
            });
        }
        let (m, n) = (self.shape.dims()[0], self.shape.dims()[1]);
        if r >= m {
            return Err(TensorError::IndexOutOfBounds { index: r, bound: m });
        }
        Ok(Tensor {
            shape: Shape::d1(n),
            data: self.data[r * n..(r + 1) * n].to_vec(),
        })
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.to_string(),
                rhs: other.shape.to_string(),
                op,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(Shape::d1(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::d2(rows, cols), v.to_vec()).unwrap()
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_identity() {
        let a = t2(2, 2, &[1., 2., 3., 4.]);
        let id = t2(2, 2, &[1., 0., 0., 1.]);
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = t2(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t2(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t2(2, 3, &[0.0; 6]);
        let b = t2(2, 3, &[0.0; 6]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = t2(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let att = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(att, a);
        let at = a.transpose().unwrap();
        assert_eq!(at.at(&[2, 1]).unwrap(), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = t2(1, 3, &[1., 2., 3.]);
        let b = t2(1, 3, &[4., 5., 6.]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t2(1, 2, &[1., 1.]);
        let g = t2(1, 2, &[2., 4.]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0., -1.]);
    }

    #[test]
    fn reductions() {
        let a = t2(2, 2, &[1., -2., 3., 0.]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.mean(), 0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), Some(2));
        assert!((a.norm_l2() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_empty_is_none() {
        assert_eq!(Tensor::default().argmax(), None);
    }

    #[test]
    fn reshape_roundtrip() {
        let a = t2(2, 6, &[0.0; 12]);
        let b = a.reshape(&[3, 4]).unwrap();
        assert_eq!(b.shape().dims(), &[3, 4]);
        assert!(a.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn at_and_set() {
        let mut a = Tensor::zeros(Shape::d3(2, 2, 2));
        a.set(&[1, 0, 1], 7.0).unwrap();
        assert_eq!(a.at(&[1, 0, 1]).unwrap(), 7.0);
        assert_eq!(a.at(&[0, 0, 0]).unwrap(), 0.0);
        assert!(a.at(&[2, 0, 0]).is_err());
    }

    #[test]
    fn display_nonempty() {
        let a = Tensor::zeros(Shape::d1(2));
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn std_of_constant_is_zero() {
        let a = Tensor::full(Shape::d1(10), 3.5);
        assert_eq!(a.std(), 0.0);
    }

    #[test]
    fn std_is_sample_standard_deviation() {
        // Hand-computed: mean 2.5, sum of squared deviations 5, sample
        // variance 5/3 — the same convention (and the same pinned value)
        // as lcda_variation::montecarlo::McStats::from_samples.
        let a = Tensor::from_vec(Shape::d1(4), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((a.std() - (5.0f32 / 3.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn std_of_single_element_is_zero() {
        let a = Tensor::from_vec(Shape::d1(1), vec![7.25]).unwrap();
        assert_eq!(a.std(), 0.0);
    }

    #[test]
    fn matmul_propagates_nan_from_either_operand() {
        // Regression: a zero-skip shortcut used to mask 0*NaN products.
        let a = t2(1, 2, &[0.0, 0.0]);
        let b = t2(2, 2, &[f32::NAN, 1.0, 2.0, 3.0]);
        let c = a.matmul(&b).unwrap();
        assert!(c.as_slice()[0].is_nan(), "NaN in rhs must reach the output");

        let a = t2(2, 2, &[f32::NAN, 0.0, 0.0, 1.0]);
        let b = t2(2, 1, &[0.0, 5.0]);
        let c = a.matmul(&b).unwrap();
        assert!(c.as_slice()[0].is_nan(), "NaN in lhs must reach the output");
        assert_eq!(c.as_slice()[1], 5.0);
    }

    #[test]
    fn row_extraction() {
        let a = t2(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.row(1).unwrap().as_slice(), &[4., 5., 6.]);
        assert!(a.row(2).is_err());
    }
}
