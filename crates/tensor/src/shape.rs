use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Tensors in this crate are row-major; the last dimension is contiguous.
/// Image batches use the NCHW convention `(batch, channels, height, width)`.
///
/// # Example
///
/// ```
/// use lcda_tensor::Shape;
/// let s = Shape::d4(8, 3, 32, 32);
/// assert_eq!(s.len(), 8 * 3 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// A rank-1 shape.
    pub fn d1(a: usize) -> Self {
        Shape { dims: vec![a] }
    }

    /// A rank-2 shape (rows, cols).
    pub fn d2(a: usize, b: usize) -> Self {
        Shape { dims: vec![a, b] }
    }

    /// A rank-3 shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Shape {
            dims: vec![a, b, c],
        }
    }

    /// A rank-4 shape (NCHW for image batches).
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Shape {
            dims: vec![a, b, c, d],
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                index: axis,
                bound: self.dims.len(),
            })
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// use lcda_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a flat offset.
    ///
    /// # Errors
    ///
    /// Returns an error when the index rank does not match or any component
    /// is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
                op: "offset",
            });
        }
        let strides = self.strides();
        let mut off = 0usize;
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Returns a new shape with the same element count, validating the
    /// target dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when element counts differ.
    pub fn reshaped(&self, dims: &[usize]) -> Result<Shape> {
        let target = Shape::new(dims);
        if target.len() != self.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: target.len(),
                actual: self.len(),
            });
        }
        Ok(target)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product() {
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape::d1(7).len(), 7);
        assert_eq!(Shape::new(&[]).len(), 1);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::d4(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
        assert_eq!(Shape::d1(9).strides(), vec![1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::d3(2, 3, 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < s.len());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), s.len());
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::d2(2, 2);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn reshape_preserves_len() {
        let s = Shape::d2(6, 4);
        assert_eq!(s.reshaped(&[2, 12]).unwrap().dims(), &[2, 12]);
        assert!(s.reshaped(&[5, 5]).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::d2(2, 3).to_string(), "(2, 3)");
    }

    #[test]
    fn zero_dim_shape_is_empty() {
        assert!(Shape::d2(0, 5).is_empty());
        assert!(!Shape::d1(1).is_empty());
    }
}
