//! # lcda-tensor
//!
//! A small, dependency-light dense tensor engine used by the LCDA
//! reproduction as the substrate for DNN training and inference.
//!
//! The crate provides:
//!
//! - [`Shape`] / [`Tensor`]: row-major `f32` tensors with NCHW layout for
//!   image data,
//! - [`ops`]: forward *and* backward kernels for convolution (via im2col),
//!   pooling, activations and the softmax cross-entropy loss,
//! - [`init`]: standard weight initializers (Xavier/Glorot, He, uniform),
//! - [`optim`]: SGD / momentum / Adam parameter optimizers,
//! - [`rng`]: deterministic, seedable random number utilities used across
//!   the whole workspace so every experiment is reproducible.
//!
//! # Example
//!
//! ```
//! use lcda_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
//! let b = Tensor::from_vec(Shape::d2(3, 2), vec![1., 0., 0., 1., 1., 1.]).unwrap();
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.as_slice(), &[4., 5., 10., 11.]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod shape;
mod tensor;

pub mod init;
pub mod ops;
pub mod optim;
pub mod rng;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
