//! Activation functions (forward + backward).

use crate::{Result, Shape, Tensor, TensorError};

/// ReLU forward: `max(0, x)` elementwise.
pub fn relu_forward(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// ReLU backward: passes the upstream gradient where the *input* was
/// positive.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn relu_backward(d_out: &Tensor, input: &Tensor) -> Result<Tensor> {
    d_out.zip(input, |g, x| if x > 0.0 { g } else { 0.0 })
}

/// Row-wise softmax of a `(n, classes)` matrix, numerically stabilized by
/// subtracting each row's max.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix input.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
            op: "softmax_rows",
        });
    }
    let (n, c) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    let src = logits.as_slice();
    let mut out = vec![0.0f32; n * c];
    for r in 0..n {
        let row = &src[r * c..(r + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &x) in out[r * c..(r + 1) * c].iter_mut().zip(row) {
            let e = (x - m).exp();
            *o = e;
            denom += e;
        }
        for o in &mut out[r * c..(r + 1) * c] {
            *o /= denom;
        }
    }
    Tensor::from_vec(Shape::d2(n, c), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu_forward(&x).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = Tensor::from_slice(&[-1.0, 0.5, 0.0]);
        let g = Tensor::from_slice(&[10.0, 10.0, 10.0]);
        assert_eq!(relu_backward(&g, &x).unwrap().as_slice(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits =
            Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.row(r).unwrap().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Larger logit → larger probability.
        assert!(p.at(&[0, 2]).unwrap() > p.at(&[0, 0]).unwrap());
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let logits = Tensor::from_vec(Shape::d2(1, 2), vec![1000.0, 1001.0]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        assert!(p.as_slice().iter().all(|x| x.is_finite()));
        assert!((p.sum() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_rejects_rank1() {
        assert!(softmax_rows(&Tensor::from_slice(&[1.0, 2.0])).is_err());
    }
}
