//! Neural-network compute kernels with explicit forward and backward passes.
//!
//! The LCDA trained evaluator needs real gradient-based training (the paper
//! trains every candidate with noise injection), so every kernel here comes
//! in a `*_forward` / `*_backward` pair. Layout is NCHW throughout.

mod activation;
mod conv;
mod gemm;
mod im2col;
mod loss;
mod pool;

pub use activation::{relu_backward, relu_forward, softmax_rows};
pub use conv::{
    conv2d_backward, conv2d_forward, conv2d_forward_direct, conv2d_infer, Conv2dParams,
};
pub use gemm::{gemm_f32, gemm_i8, gemm_ref, quantize_symmetric};
pub use im2col::{col2im, col2im_batch, im2col, im2col_batch, ConvGeometry};
pub use loss::{cross_entropy_loss, one_hot};
pub use pool::{
    avgpool_global_backward, avgpool_global_forward, maxpool2_backward, maxpool2_forward,
};
