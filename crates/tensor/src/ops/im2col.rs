//! im2col / col2im lowering for convolution.
//!
//! The same lowering is used by the NeuroSim-style crossbar mapper (a conv
//! layer occupies `k*k*c_in` crossbar rows), so this module is the single
//! source of truth for convolution geometry in the workspace.

use crate::{Result, Shape, Tensor, TensorError};

/// Geometry of a 2-D convolution: input plane, kernel, stride and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero-sized kernels or
    /// strides, or when the kernel (plus padding) does not fit the input.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument(
                "kernel and stride must be positive".to_string(),
            ));
        }
        if in_channels == 0 || in_h == 0 || in_w == 0 {
            return Err(TensorError::InvalidArgument(
                "input plane must be non-empty".to_string(),
            ));
        }
        if in_h + 2 * padding < kernel || in_w + 2 * padding < kernel {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {kernel} larger than padded input {}x{}",
                in_h + 2 * padding,
                in_w + 2 * padding
            )));
        }
        Ok(ConvGeometry {
            in_channels,
            in_h,
            in_w,
            kernel,
            stride,
            padding,
        })
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Rows of the lowered patch matrix: `c_in * k * k`.
    ///
    /// This is also the number of crossbar *rows* the layer needs when
    /// mapped onto a CiM array — the quantity behind the paper's §IV-B
    /// utilization discussion.
    pub fn patch_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the lowered patch matrix: `out_h * out_w`.
    pub fn patch_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Lowers one NCHW sample `(c, h, w)` into a `(c*k*k, out_h*out_w)` matrix.
///
/// Column `j` of the result is the flattened receptive field of output
/// pixel `j` (row-major over the output plane); zero padding is
/// materialized as zeros.
///
/// # Errors
///
/// Returns a shape error when `input` does not match the geometry.
pub fn im2col(input: &Tensor, geom: &ConvGeometry) -> Result<Tensor> {
    let want = Shape::d3(geom.in_channels, geom.in_h, geom.in_w);
    if input.shape() != &want {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_string(),
            rhs: want.to_string(),
            op: "im2col",
        });
    }
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = geom.patch_rows();
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let src = input.as_slice();
    let k = geom.kernel;
    for c in 0..geom.in_channels {
        for ki in 0..k {
            for kj in 0..k {
                let row = (c * k + ki) * k + kj;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ki) as isize - geom.padding as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kj) as isize - geom.padding as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        let src_idx = (c * geom.in_h + iy as usize) * geom.in_w + ix as usize;
                        out[row * cols + oy * ow + ox] = src[src_idx];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d2(rows, cols), out)
}

/// Adjoint of [`im2col`]: scatters a `(c*k*k, out_h*out_w)` gradient matrix
/// back into an input-shaped `(c, h, w)` gradient, accumulating overlaps.
///
/// # Errors
///
/// Returns a shape error when `cols` does not match the geometry.
pub fn col2im(cols: &Tensor, geom: &ConvGeometry) -> Result<Tensor> {
    let want = Shape::d2(geom.patch_rows(), geom.patch_cols());
    if cols.shape() != &want {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().to_string(),
            rhs: want.to_string(),
            op: "col2im",
        });
    }
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_cols = oh * ow;
    let mut out = vec![0.0f32; geom.in_channels * geom.in_h * geom.in_w];
    let src = cols.as_slice();
    let k = geom.kernel;
    for c in 0..geom.in_channels {
        for ki in 0..k {
            for kj in 0..k {
                let row = (c * k + ki) * k + kj;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ki) as isize - geom.padding as isize;
                    if iy < 0 || iy >= geom.in_h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kj) as isize - geom.padding as isize;
                        if ix < 0 || ix >= geom.in_w as isize {
                            continue;
                        }
                        let dst_idx = (c * geom.in_h + iy as usize) * geom.in_w + ix as usize;
                        out[dst_idx] += src[row * n_cols + oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d3(geom.in_channels, geom.in_h, geom.in_w), out)
}

/// Lowers a whole NCHW batch `(n, c, h, w)` into one
/// `(c*k*k, n * out_h*out_w)` matrix.
///
/// Sample `s`'s patch matrix occupies the contiguous column block
/// `[s * patch_cols, (s+1) * patch_cols)`, so each column block is exactly
/// what [`im2col`] produces for that sample. Lowering the batch once lets
/// convolution run as a single GEMM per layer instead of one GEMM per
/// sample — and, crucially, the per-output-element summation chains are
/// unchanged, so the batched forward stays bit-identical to the
/// per-sample path.
///
/// # Errors
///
/// Returns a shape error when `input` is not `(n, c, h, w)` matching the
/// geometry.
pub fn im2col_batch(input: &Tensor, geom: &ConvGeometry) -> Result<Tensor> {
    let dims = input.shape().dims();
    if dims.len() != 4
        || dims[1] != geom.in_channels
        || dims[2] != geom.in_h
        || dims[3] != geom.in_w
    {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_string(),
            rhs: format!("(n, {}, {}, {})", geom.in_channels, geom.in_h, geom.in_w),
            op: "im2col_batch",
        });
    }
    let batch = dims[0];
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = geom.patch_rows();
    let pc = oh * ow;
    let cols = batch * pc;
    let plane = geom.in_channels * geom.in_h * geom.in_w;
    let mut out = vec![0.0f32; rows * cols];
    let k = geom.kernel;
    for s in 0..batch {
        let src = &input.as_slice()[s * plane..(s + 1) * plane];
        let col_base = s * pc;
        for c in 0..geom.in_channels {
            for ki in 0..k {
                for kj in 0..k {
                    let row = (c * k + ki) * k + kj;
                    for oy in 0..oh {
                        let iy = (oy * geom.stride + ki) as isize - geom.padding as isize;
                        if iy < 0 || iy >= geom.in_h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * geom.stride + kj) as isize - geom.padding as isize;
                            if ix < 0 || ix >= geom.in_w as isize {
                                continue;
                            }
                            let src_idx = (c * geom.in_h + iy as usize) * geom.in_w + ix as usize;
                            out[row * cols + col_base + oy * ow + ox] = src[src_idx];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::d2(rows, cols), out)
}

/// Adjoint of [`im2col_batch`]: scatters a `(c*k*k, n * out_h*out_w)`
/// gradient matrix back into an `(n, c, h, w)` input gradient,
/// accumulating overlaps.
///
/// # Errors
///
/// Returns a shape error when `cols` does not match the geometry for a
/// batch of `batch` samples.
pub fn col2im_batch(cols: &Tensor, batch: usize, geom: &ConvGeometry) -> Result<Tensor> {
    let pc = geom.patch_cols();
    let want = Shape::d2(geom.patch_rows(), batch * pc);
    if cols.shape() != &want {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().to_string(),
            rhs: want.to_string(),
            op: "col2im_batch",
        });
    }
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let n_cols = batch * pc;
    let plane = geom.in_channels * geom.in_h * geom.in_w;
    let mut out = vec![0.0f32; batch * plane];
    let src = cols.as_slice();
    let k = geom.kernel;
    for s in 0..batch {
        let dst = &mut out[s * plane..(s + 1) * plane];
        let col_base = s * pc;
        for c in 0..geom.in_channels {
            for ki in 0..k {
                for kj in 0..k {
                    let row = (c * k + ki) * k + kj;
                    for oy in 0..oh {
                        let iy = (oy * geom.stride + ki) as isize - geom.padding as isize;
                        if iy < 0 || iy >= geom.in_h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * geom.stride + kj) as isize - geom.padding as isize;
                            if ix < 0 || ix >= geom.in_w as isize {
                                continue;
                            }
                            let dst_idx = (c * geom.in_h + iy as usize) * geom.in_w + ix as usize;
                            dst[dst_idx] += src[row * n_cols + col_base + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(
        Shape::d4(batch, geom.in_channels, geom.in_h, geom.in_w),
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_output_dims() {
        let g = ConvGeometry::new(3, 32, 32, 3, 1, 1).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = ConvGeometry::new(3, 32, 32, 5, 1, 0).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (28, 28));
        let g = ConvGeometry::new(3, 32, 32, 3, 2, 1).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
    }

    #[test]
    fn geometry_rejects_bad_config() {
        assert!(ConvGeometry::new(3, 32, 32, 0, 1, 0).is_err());
        assert!(ConvGeometry::new(3, 32, 32, 3, 0, 0).is_err());
        assert!(ConvGeometry::new(3, 2, 2, 7, 1, 0).is_err());
        assert!(ConvGeometry::new(0, 32, 32, 3, 1, 0).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // k=1, s=1, p=0: the patch matrix equals the flattened input.
        let g = ConvGeometry::new(2, 2, 2, 1, 1, 0).unwrap();
        let input =
            Tensor::from_vec(Shape::d3(2, 2, 2), (1..=8).map(|x| x as f32).collect()).unwrap();
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.shape().dims(), &[2, 4]);
        assert_eq!(cols.as_slice(), input.as_slice());
    }

    #[test]
    fn im2col_known_patch() {
        // Single channel 3x3 input, 2x2 kernel, stride 1, no padding.
        let g = ConvGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let input =
            Tensor::from_vec(Shape::d3(1, 3, 3), vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]).unwrap();
        let cols = im2col(&input, &g).unwrap();
        // Rows are kernel positions (ki,kj); columns are the 4 output pixels.
        assert_eq!(cols.shape().dims(), &[4, 4]);
        assert_eq!(cols.row(0).unwrap().as_slice(), &[1., 2., 4., 5.]);
        assert_eq!(cols.row(3).unwrap().as_slice(), &[5., 6., 8., 9.]);
    }

    #[test]
    fn im2col_padding_zeros() {
        let g = ConvGeometry::new(1, 2, 2, 3, 1, 1).unwrap();
        let input = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1., 2., 3., 4.]).unwrap();
        let cols = im2col(&input, &g).unwrap();
        // Top-left output pixel's receptive field starts in the padding.
        assert_eq!(cols.at(&[0, 0]).unwrap(), 0.0);
        // Center of kernel over pixel (0,0) sees input value 1.
        assert_eq!(cols.at(&[4, 0]).unwrap(), 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for arbitrary x, y — the defining
        // property of an adjoint pair, which is what backward passes rely on.
        let g = ConvGeometry::new(2, 5, 5, 3, 2, 1).unwrap();
        let mut rng = crate::rng::SeedRng::new(99);
        let x = Tensor::from_vec(
            Shape::d3(2, 5, 5),
            (0..50).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        )
        .unwrap();
        let y = Tensor::from_vec(
            Shape::d2(g.patch_rows(), g.patch_cols()),
            (0..g.patch_rows() * g.patch_cols())
                .map(|_| rng.uniform(-1.0, 1.0))
                .collect(),
        )
        .unwrap();
        let lhs: f32 = im2col(&x, &g)
            .unwrap()
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(col2im(&y, &g).unwrap().as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn shape_validation() {
        let g = ConvGeometry::new(1, 3, 3, 2, 1, 0).unwrap();
        let wrong = Tensor::zeros(Shape::d3(2, 3, 3));
        assert!(im2col(&wrong, &g).is_err());
        let wrong_cols = Tensor::zeros(Shape::d2(3, 3));
        assert!(col2im(&wrong_cols, &g).is_err());
        let wrong_batch = Tensor::zeros(Shape::d4(2, 2, 3, 3));
        assert!(im2col_batch(&wrong_batch, &g).is_err());
        assert!(col2im_batch(&wrong_cols, 1, &g).is_err());
    }

    #[test]
    fn im2col_batch_matches_per_sample() {
        let g = ConvGeometry::new(2, 5, 5, 3, 2, 1).unwrap();
        let mut rng = crate::rng::SeedRng::new(7);
        let batch = 3;
        let plane = 2 * 5 * 5;
        let data: Vec<f32> = (0..batch * plane).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let input = Tensor::from_vec(Shape::d4(batch, 2, 5, 5), data.clone()).unwrap();
        let cols = im2col_batch(&input, &g).unwrap();
        let pc = g.patch_cols();
        assert_eq!(cols.shape().dims(), &[g.patch_rows(), batch * pc]);
        for s in 0..batch {
            let sample = Tensor::from_vec(
                Shape::d3(2, 5, 5),
                data[s * plane..(s + 1) * plane].to_vec(),
            )
            .unwrap();
            let single = im2col(&sample, &g).unwrap();
            for row in 0..g.patch_rows() {
                for j in 0..pc {
                    assert_eq!(
                        cols.as_slice()[row * batch * pc + s * pc + j],
                        single.as_slice()[row * pc + j],
                        "mismatch at sample {s} row {row} col {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn col2im_batch_matches_per_sample() {
        let g = ConvGeometry::new(2, 4, 4, 3, 1, 1).unwrap();
        let mut rng = crate::rng::SeedRng::new(13);
        let batch = 2;
        let (rows, pc) = (g.patch_rows(), g.patch_cols());
        let data: Vec<f32> = (0..rows * batch * pc)
            .map(|_| rng.uniform(-1.0, 1.0))
            .collect();
        let cols = Tensor::from_vec(Shape::d2(rows, batch * pc), data.clone()).unwrap();
        let grad = col2im_batch(&cols, batch, &g).unwrap();
        let plane = 2 * 4 * 4;
        for s in 0..batch {
            // Extract sample s's column block and run the single-sample adjoint.
            let mut block = vec![0.0f32; rows * pc];
            for row in 0..rows {
                block[row * pc..(row + 1) * pc].copy_from_slice(
                    &data[row * batch * pc + s * pc..row * batch * pc + (s + 1) * pc],
                );
            }
            let single =
                col2im(&Tensor::from_vec(Shape::d2(rows, pc), block).unwrap(), &g).unwrap();
            assert_eq!(
                &grad.as_slice()[s * plane..(s + 1) * plane],
                single.as_slice(),
                "sample {s} gradient mismatch"
            );
        }
    }
}
