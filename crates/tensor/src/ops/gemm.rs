//! Blocked, deterministic GEMM microkernels (f32 and int8).
//!
//! This module is the single matrix-multiply hot path for the whole
//! workspace: [`crate::Tensor::matmul`] calls [`gemm_f32`], convolution
//! rides on it via im2col, and the fused Monte-Carlo engine in `lcda-dnn`
//! drives the kernels directly on raw buffers.
//!
//! # Determinism contract
//!
//! For every output element `out[i][j]`, [`gemm_f32`] accumulates the
//! products `a[i][p] * b[p][j]` in **ascending `p` order starting from the
//! initial value of `out[i][j]`** — exactly the summation chain of the
//! textbook scalar i-k-j loop in [`gemm_ref`]. The cache blocking (`KC` /
//! `NC` panels) and the 4-row register tile change *which* elements are
//! visited together, never the per-element order, so the blocked kernel is
//! **bit-identical** to the scalar reference, run-to-run and
//! machine-to-machine (IEEE-754 f32, no FMA contraction is emitted for
//! plain `a * b + c` expressions in Rust).
//!
//! There is deliberately **no zero-skip shortcut**: `0.0 * NaN` and
//! `0.0 * inf` must produce NaN so that non-finite values propagate to the
//! output where the NaN-quarantine layer can catch them. An earlier
//! `if a == 0.0 { continue }` fast path in `Tensor::matmul` masked exactly
//! this class of corruption.
//!
//! The int8 kernel ([`gemm_i8`]) accumulates in `i32`, which is exact and
//! associative — it is trivially deterministic under any blocking or
//! threading scheme.

/// Rows per register tile in the f32 microkernel. Four accumulator rows
/// share each loaded `b` element, quartering memory traffic on `b` while
/// staying within the register budget of plain autovectorized code.
const MR: usize = 4;
/// Depth (`k`) panel size: one `KC x NC` panel of `b` stays resident in
/// cache while the microkernel sweeps the `m` dimension.
const KC: usize = 128;
/// Column (`n`) panel size.
const NC: usize = 512;

fn check_dims(m: usize, k: usize, n: usize, a_len: usize, b_len: usize, out_len: usize) {
    assert_eq!(a_len, m * k, "gemm: lhs buffer length != m*k");
    assert_eq!(b_len, k * n, "gemm: rhs buffer length != k*n");
    assert_eq!(out_len, m * n, "gemm: out buffer length != m*n");
}

/// Scalar i-k-j reference kernel: `out += a · b` for row-major `a`
/// (`m x k`), `b` (`k x n`) and `out` (`m x n`).
///
/// This is the summation-order specification that [`gemm_f32`] must match
/// bit-for-bit. It intentionally has no zero-skip shortcut (see module
/// docs). Kept callable (not test-only) so benches and CI can measure the
/// blocked kernel against it.
pub fn gemm_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len());
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Blocked f32 GEMM: `out += a · b` for row-major `a` (`m x k`),
/// `b` (`k x n`), `out` (`m x n`).
///
/// Register-blocked i-k-j with `MR = 4` accumulator rows and `KC x NC`
/// cache panels. Bit-identical to [`gemm_ref`] (see module docs for the
/// determinism contract). Written in safe Rust with slice shapes the
/// optimizer can prove, so it autovectorizes on the baseline target
/// without `target-cpu=native`.
///
/// Panics if any buffer length disagrees with `m`/`k`/`n`.
pub fn gemm_f32(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len());
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for jc in (0..n).step_by(NC) {
        let nw = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kw = KC.min(k - pc);
            let mut i = 0;
            // 4-row register tile. `split_at_mut` carves four disjoint
            // output row windows; zipping them with the `b` panel row lets
            // the compiler drop every bounds check in the inner loop.
            while i + MR <= m {
                let rows = &mut out[i * n..(i + MR) * n];
                let (r0, rest) = rows.split_at_mut(n);
                let (r1, rest) = rest.split_at_mut(n);
                let (r2, r3) = rest.split_at_mut(n);
                let r0 = &mut r0[jc..jc + nw];
                let r1 = &mut r1[jc..jc + nw];
                let r2 = &mut r2[jc..jc + nw];
                let r3 = &mut r3[jc..jc + nw];
                for p in pc..pc + kw {
                    let a0 = a[i * k + p];
                    let a1 = a[(i + 1) * k + p];
                    let a2 = a[(i + 2) * k + p];
                    let a3 = a[(i + 3) * k + p];
                    let bp = &b[p * n + jc..p * n + jc + nw];
                    let it = r0
                        .iter_mut()
                        .zip(r1.iter_mut())
                        .zip(r2.iter_mut())
                        .zip(r3.iter_mut())
                        .zip(bp.iter());
                    for ((((o0, o1), o2), o3), &bv) in it {
                        *o0 += a0 * bv;
                        *o1 += a1 * bv;
                        *o2 += a2 * bv;
                        *o3 += a3 * bv;
                    }
                }
                i += MR;
            }
            // Remainder rows (m % MR) fall back to single-row sweeps with
            // the same ascending-p per-element order.
            while i < m {
                let row = &mut out[i * n + jc..i * n + jc + nw];
                for p in pc..pc + kw {
                    let av = a[i * k + p];
                    let bp = &b[p * n + jc..p * n + jc + nw];
                    for (o, &bv) in row.iter_mut().zip(bp) {
                        *o += av * bv;
                    }
                }
                i += 1;
            }
        }
    }
}

/// Quantizes a buffer with a per-tensor symmetric int8 scheme.
///
/// `scale = max_abs / 127`; each element maps to
/// `round(x / scale)` clamped to `[-127, 127]` (the `-128` code is unused
/// so negation is exact — standard symmetric-quantization practice). An
/// all-zero buffer gets `scale = 1.0` and all-zero codes. Inputs are
/// assumed finite: the eval pipeline's NaN quarantine runs upstream, and
/// non-finite values would be meaningless in a fixed-point crossbar model.
///
/// Returns `(codes, scale)`; `codes[i] * scale ≈ data[i]`.
pub fn quantize_symmetric(data: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = data.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
    if max_abs == 0.0 {
        return (vec![0i8; data.len()], 1.0);
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    let codes = data
        .iter()
        .map(|&x| (x * inv).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (codes, scale)
}

/// Int8 GEMM with exact i32 accumulation: `out += a · b` for row-major
/// `a` (`m x k`, i8), `b` (`k x n`, i8), `out` (`m x n`, i32).
///
/// Integer accumulation is exact and associative, so this kernel is
/// deterministic under any loop order; it uses the same i-k-j sweep as
/// the f32 path. Callers dequantize with the product of the two operand
/// scales (see [`quantize_symmetric`]). `k` must stay below ~2^16 for the
/// i32 accumulator to be overflow-free in the worst case
/// (127 · 127 · 2^16 < 2^31); every layer in this workspace is far
/// smaller.
pub fn gemm_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], out: &mut [i32]) {
    check_dims(m, k, n, a.len(), b.len(), out.len());
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let av = i32::from(av);
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * i32::from(bv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn random_matrix(rng: &mut SeedRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.uniform(-2.0, 2.0)).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn gemm_known_values() {
        // [[1,2,3],[4,5,6]] x [[7,8],[9,10],[11,12]] = [[58,64],[139,154]]
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut out = [0.0f32; 4];
        gemm_f32(2, 3, 2, &a, &b, &mut out);
        assert_eq!(out, [58.0, 64.0, 139.0, 154.0]);
        let mut r = [0.0f32; 4];
        gemm_ref(2, 3, 2, &a, &b, &mut r);
        assert_eq!(r, out);
    }

    #[test]
    fn gemm_blocked_matches_reference_bitwise() {
        let mut rng = SeedRng::new(41);
        // Shapes straddling the MR tile and the KC/NC panel boundaries.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 4, 4),
            (5, 7, 9),
            (8, 130, 3),
            (6, 129, 513),
            (17, 31, 23),
        ] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut blocked = vec![0.0f32; m * n];
            let mut reference = vec![0.0f32; m * n];
            gemm_f32(m, k, n, &a, &b, &mut blocked);
            gemm_ref(m, k, n, &a, &b, &mut reference);
            assert_eq!(
                bits(&blocked),
                bits(&reference),
                "blocked kernel diverged from scalar reference at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn gemm_is_deterministic_across_calls() {
        let mut rng = SeedRng::new(99);
        let (m, k, n) = (9, 33, 14);
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let mut first = vec![0.0f32; m * n];
        let mut second = vec![0.0f32; m * n];
        gemm_f32(m, k, n, &a, &b, &mut first);
        gemm_f32(m, k, n, &a, &b, &mut second);
        assert_eq!(bits(&first), bits(&second));
    }

    #[test]
    fn gemm_accumulates_into_out() {
        let a = [1.0, 1.0];
        let b = [2.0, 3.0];
        let mut out = [10.0f32];
        gemm_f32(1, 2, 1, &a, &b, &mut out);
        assert_eq!(out, [15.0]);
    }

    #[test]
    fn nan_in_rhs_propagates_even_against_zero_lhs() {
        // Regression: the old Tensor::matmul skipped `a == 0.0` rows,
        // silently masking 0*NaN (which is NaN per IEEE-754).
        let a = [0.0, 0.0];
        let b = [f32::NAN, 1.0, 2.0, 3.0];
        let mut out = [0.0f32; 2];
        gemm_f32(1, 2, 2, &a, &b, &mut out);
        assert!(out[0].is_nan(), "0*NaN must propagate NaN");
        assert!(out[1].is_finite());
    }

    #[test]
    fn inf_times_zero_propagates_nan() {
        let a = [0.0];
        let b = [f32::INFINITY];
        let mut out = [0.0f32];
        gemm_f32(1, 1, 1, &a, &b, &mut out);
        assert!(out[0].is_nan());
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut out: [f32; 0] = [];
        gemm_f32(0, 3, 0, &[], &[], &mut out);
        let mut out2 = [1.0f32, 2.0];
        gemm_f32(1, 0, 2, &[], &[], &mut out2);
        assert_eq!(out2, [1.0, 2.0]);
    }

    #[test]
    fn quantize_symmetric_known_values() {
        let (codes, scale) = quantize_symmetric(&[0.0, 1.0, -2.0, 4.0]);
        assert!((scale - 4.0 / 127.0).abs() < 1e-9);
        assert_eq!(codes, vec![0, 32, -64, 127]);
    }

    #[test]
    fn quantize_symmetric_all_zero() {
        let (codes, scale) = quantize_symmetric(&[0.0, 0.0]);
        assert_eq!(codes, vec![0, 0]);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn gemm_i8_exact_on_integers() {
        // Codes small enough that quantization is exact: int8 GEMM must
        // reproduce the f32 product exactly after dequantization.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let (qa, sa) = quantize_symmetric(&a);
        let (qb, sb) = quantize_symmetric(&b);
        let mut acc = [0i32; 4];
        gemm_i8(2, 3, 2, &qa, &qb, &mut acc);
        let mut exact = [0.0f32; 4];
        gemm_f32(2, 3, 2, &a, &b, &mut exact);
        for (i, &v) in acc.iter().enumerate() {
            let deq = v as f32 * sa * sb;
            assert!(
                (deq - exact[i]).abs() < 1e-3,
                "int8 dequant {deq} vs exact {}",
                exact[i]
            );
        }
    }

    #[test]
    fn gemm_i8_is_deterministic() {
        let a: Vec<i8> = (0..6).map(|i| (i * 7 % 11) as i8 - 5).collect();
        let b: Vec<i8> = (0..8).map(|i| (i * 13 % 17) as i8 - 8).collect();
        let mut x = vec![0i32; 12];
        let mut y = vec![0i32; 12];
        gemm_i8(3, 2, 4, &a, &b, &mut x);
        gemm_i8(3, 2, 4, &a, &b, &mut y);
        assert_eq!(x, y);
    }
}
