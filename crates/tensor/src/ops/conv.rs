//! 2-D convolution forward and backward passes.

use super::im2col::{col2im, im2col, ConvGeometry};
use crate::{Result, Shape, Tensor, TensorError};

/// A convolution layer's hyper-parameters plus its geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Input-plane geometry (channels, size, kernel, stride, padding).
    pub geom: ConvGeometry,
    /// Output channels.
    pub out_channels: usize,
}

impl Conv2dParams {
    /// Creates parameters, validating the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for invalid geometry or a
    /// zero `out_channels`.
    pub fn new(geom: ConvGeometry, out_channels: usize) -> Result<Self> {
        if out_channels == 0 {
            return Err(TensorError::InvalidArgument(
                "out_channels must be positive".to_string(),
            ));
        }
        Ok(Conv2dParams { geom, out_channels })
    }

    /// Expected weight shape `(out_channels, c_in * k * k)`.
    pub fn weight_shape(&self) -> Shape {
        Shape::d2(self.out_channels, self.geom.patch_rows())
    }

    /// Expected output shape for a batch of `n` samples.
    pub fn output_shape(&self, n: usize) -> Shape {
        Shape::d4(n, self.out_channels, self.geom.out_h(), self.geom.out_w())
    }

    /// Multiply-accumulate count for one sample — the quantity the
    /// NeuroSim-style cost model multiplies by per-MAC energy.
    pub fn macs(&self) -> u64 {
        self.out_channels as u64 * self.geom.patch_rows() as u64 * self.geom.patch_cols() as u64
    }
}

fn check_input(input: &Tensor, p: &Conv2dParams, op: &'static str) -> Result<usize> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.shape().rank(),
            op,
        });
    }
    let d = input.shape().dims();
    if d[1] != p.geom.in_channels || d[2] != p.geom.in_h || d[3] != p.geom.in_w {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_string(),
            rhs: format!(
                "(n, {}, {}, {})",
                p.geom.in_channels, p.geom.in_h, p.geom.in_w
            ),
            op,
        });
    }
    Ok(d[0])
}

/// Convolution forward pass via im2col + matmul.
///
/// `input` is `(n, c_in, h, w)`, `weight` is `(c_out, c_in*k*k)`, `bias` is
/// `(c_out)`. Returns `(n, c_out, out_h, out_w)` and caches the per-sample
/// patch matrices for the backward pass.
///
/// # Errors
///
/// Returns shape errors when any operand disagrees with `params`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: &Conv2dParams,
) -> Result<(Tensor, Vec<Tensor>)> {
    let n = check_input(input, params, "conv2d_forward")?;
    if weight.shape() != &params.weight_shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: weight.shape().to_string(),
            rhs: params.weight_shape().to_string(),
            op: "conv2d_forward",
        });
    }
    if bias.shape() != &Shape::d1(params.out_channels) {
        return Err(TensorError::ShapeMismatch {
            lhs: bias.shape().to_string(),
            rhs: Shape::d1(params.out_channels).to_string(),
            op: "conv2d_forward",
        });
    }
    let geom = &params.geom;
    let plane = geom.in_channels * geom.in_h * geom.in_w;
    let out_plane = params.out_channels * geom.patch_cols();
    let mut out = vec![0.0f32; n * out_plane];
    let mut cols_cache = Vec::with_capacity(n);
    for s in 0..n {
        let sample = Tensor::from_vec(
            Shape::d3(geom.in_channels, geom.in_h, geom.in_w),
            input.as_slice()[s * plane..(s + 1) * plane].to_vec(),
        )?;
        let cols = im2col(&sample, geom)?;
        let prod = weight.matmul(&cols)?; // (c_out, oh*ow)
        let dst = &mut out[s * out_plane..(s + 1) * out_plane];
        let pc = geom.patch_cols();
        for c in 0..params.out_channels {
            let b = bias.as_slice()[c];
            for (d, &v) in dst[c * pc..(c + 1) * pc]
                .iter_mut()
                .zip(&prod.as_slice()[c * pc..(c + 1) * pc])
            {
                *d = v + b;
            }
        }
        cols_cache.push(cols);
    }
    Ok((Tensor::from_vec(params.output_shape(n), out)?, cols_cache))
}

/// Convolution backward pass.
///
/// Given `d_out` `(n, c_out, oh, ow)` and the cached patch matrices from
/// [`conv2d_forward`], returns `(d_input, d_weight, d_bias)`.
///
/// # Errors
///
/// Returns shape errors when operands disagree with `params` or the cache
/// length does not match the batch.
pub fn conv2d_backward(
    d_out: &Tensor,
    weight: &Tensor,
    cols_cache: &[Tensor],
    params: &Conv2dParams,
) -> Result<(Tensor, Tensor, Tensor)> {
    let n = cols_cache.len();
    if d_out.shape() != &params.output_shape(n) {
        return Err(TensorError::ShapeMismatch {
            lhs: d_out.shape().to_string(),
            rhs: params.output_shape(n).to_string(),
            op: "conv2d_backward",
        });
    }
    let geom = &params.geom;
    let pc = geom.patch_cols();
    let out_plane = params.out_channels * pc;
    let plane = geom.in_channels * geom.in_h * geom.in_w;

    let mut d_weight = Tensor::zeros(params.weight_shape());
    let mut d_bias = Tensor::zeros(Shape::d1(params.out_channels));
    let mut d_input = vec![0.0f32; n * plane];
    let w_t = weight.transpose()?;

    for (s, cols) in cols_cache.iter().enumerate() {
        let d_mat = Tensor::from_vec(
            Shape::d2(params.out_channels, pc),
            d_out.as_slice()[s * out_plane..(s + 1) * out_plane].to_vec(),
        )?;
        // dW += dOut_mat * cols^T
        let dw = d_mat.matmul(&cols.transpose()?)?;
        d_weight.axpy(1.0, &dw)?;
        // db += row sums of dOut_mat
        for c in 0..params.out_channels {
            let sum: f32 = d_mat.as_slice()[c * pc..(c + 1) * pc].iter().sum();
            d_bias.as_mut_slice()[c] += sum;
        }
        // dInput = col2im(W^T * dOut_mat)
        let d_cols = w_t.matmul(&d_mat)?;
        let d_sample = col2im(&d_cols, geom)?;
        d_input[s * plane..(s + 1) * plane].copy_from_slice(d_sample.as_slice());
    }
    Ok((
        Tensor::from_vec(
            Shape::d4(n, geom.in_channels, geom.in_h, geom.in_w),
            d_input,
        )?,
        d_weight,
        d_bias,
    ))
}

/// Reference direct (nested-loop) convolution used to validate the im2col
/// path in tests. Slow; not for production use.
///
/// # Errors
///
/// Returns shape errors as [`conv2d_forward`] does.
pub fn conv2d_forward_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let n = check_input(input, params, "conv2d_forward_direct")?;
    let geom = &params.geom;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let mut out = Tensor::zeros(params.output_shape(n));
    for s in 0..n {
        for co in 0..params.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.as_slice()[co];
                    for ci in 0..geom.in_channels {
                        for ki in 0..k {
                            for kj in 0..k {
                                let iy = (oy * geom.stride + ki) as isize - geom.padding as isize;
                                let ix = (ox * geom.stride + kj) as isize - geom.padding as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= geom.in_h as isize
                                    || ix >= geom.in_w as isize
                                {
                                    continue;
                                }
                                let x = input
                                    .at(&[s, ci, iy as usize, ix as usize])
                                    .expect("validated bounds");
                                let w = weight
                                    .at(&[co, (ci * k + ki) * k + kj])
                                    .expect("validated bounds");
                                acc += x * w;
                            }
                        }
                    }
                    out.set(&[s, co, oy, ox], acc)?;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn rand_tensor(shape: Shape, rng: &mut SeedRng) -> Tensor {
        let n = shape.len();
        Tensor::from_vec(shape, (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()).unwrap()
    }

    #[test]
    fn im2col_matches_direct() {
        let mut rng = SeedRng::new(42);
        for &(k, s, p) in &[(1usize, 1usize, 0usize), (3, 1, 1), (3, 2, 1), (5, 1, 2)] {
            let geom = ConvGeometry::new(3, 8, 8, k, s, p).unwrap();
            let params = Conv2dParams::new(geom, 4).unwrap();
            let input = rand_tensor(Shape::d4(2, 3, 8, 8), &mut rng);
            let weight = rand_tensor(params.weight_shape(), &mut rng);
            let bias = rand_tensor(Shape::d1(4), &mut rng);
            let (fast, _) = conv2d_forward(&input, &weight, &bias, &params).unwrap();
            let slow = conv2d_forward_direct(&input, &weight, &bias, &params).unwrap();
            let max_err = fast
                .as_slice()
                .iter()
                .zip(slow.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 1e-4, "k={k} s={s} p={p} err={max_err}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeedRng::new(7);
        let geom = ConvGeometry::new(2, 5, 5, 3, 1, 1).unwrap();
        let params = Conv2dParams::new(geom, 3).unwrap();
        let input = rand_tensor(Shape::d4(1, 2, 5, 5), &mut rng);
        let weight = rand_tensor(params.weight_shape(), &mut rng);
        let bias = rand_tensor(Shape::d1(3), &mut rng);

        // Loss = sum of outputs, so dOut = ones.
        let loss = |w: &Tensor, b: &Tensor, x: &Tensor| -> f32 {
            conv2d_forward(x, w, b, &params).unwrap().0.sum()
        };
        let (out, cache) = conv2d_forward(&input, &weight, &bias, &params).unwrap();
        let d_out = Tensor::ones(out.shape().clone());
        let (d_in, d_w, d_b) = conv2d_backward(&d_out, &weight, &cache, &params).unwrap();

        let eps = 1e-2f32;
        // Check a sample of weight gradients.
        for idx in [0usize, 7, 23, d_w.len() - 1] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&wp, &bias, &input) - loss(&wm, &bias, &input)) / (2.0 * eps);
            let an = d_w.as_slice()[idx];
            assert!(
                (fd - an).abs() < 0.05 * an.abs().max(1.0),
                "w[{idx}]: fd={fd} an={an}"
            );
        }
        // Bias gradients.
        for idx in 0..3 {
            let mut bp = bias.clone();
            bp.as_mut_slice()[idx] += eps;
            let mut bm = bias.clone();
            bm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&weight, &bp, &input) - loss(&weight, &bm, &input)) / (2.0 * eps);
            let an = d_b.as_slice()[idx];
            assert!(
                (fd - an).abs() < 0.05 * an.abs().max(1.0),
                "b[{idx}]: fd={fd} an={an}"
            );
        }
        // Input gradients.
        for idx in [0usize, 13, 31, d_in.len() - 1] {
            let mut xp = input.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = input.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&weight, &bias, &xp) - loss(&weight, &bias, &xm)) / (2.0 * eps);
            let an = d_in.as_slice()[idx];
            assert!(
                (fd - an).abs() < 0.05 * an.abs().max(1.0),
                "x[{idx}]: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn macs_counts() {
        let geom = ConvGeometry::new(3, 32, 32, 3, 1, 1).unwrap();
        let params = Conv2dParams::new(geom, 16).unwrap();
        // 16 * (3*3*3) * (32*32)
        assert_eq!(params.macs(), 16 * 27 * 1024);
    }

    #[test]
    fn rejects_mismatched_operands() {
        let geom = ConvGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        let params = Conv2dParams::new(geom, 4).unwrap();
        let input = Tensor::zeros(Shape::d4(1, 2, 8, 8)); // wrong channels
        let weight = Tensor::zeros(params.weight_shape());
        let bias = Tensor::zeros(Shape::d1(4));
        assert!(conv2d_forward(&input, &weight, &bias, &params).is_err());

        let input = Tensor::zeros(Shape::d4(1, 3, 8, 8));
        let bad_w = Tensor::zeros(Shape::d2(4, 10));
        assert!(conv2d_forward(&input, &bad_w, &bias, &params).is_err());
    }

    #[test]
    fn zero_out_channels_rejected() {
        let geom = ConvGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        assert!(Conv2dParams::new(geom, 0).is_err());
    }
}
