//! 2-D convolution forward and backward passes.
//!
//! The forward pass lowers the whole batch with
//! [`im2col_batch`](super::im2col::im2col_batch) and runs **one** GEMM per
//! layer; per-output-element summation chains are identical to the old
//! per-sample formulation, so results are bit-identical while the GEMM
//! gets hardware-friendly shapes.

use super::im2col::{col2im_batch, im2col_batch, ConvGeometry};
use crate::{Result, Shape, Tensor, TensorError};

/// A convolution layer's hyper-parameters plus its geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Input-plane geometry (channels, size, kernel, stride, padding).
    pub geom: ConvGeometry,
    /// Output channels.
    pub out_channels: usize,
}

impl Conv2dParams {
    /// Creates parameters, validating the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for invalid geometry or a
    /// zero `out_channels`.
    pub fn new(geom: ConvGeometry, out_channels: usize) -> Result<Self> {
        if out_channels == 0 {
            return Err(TensorError::InvalidArgument(
                "out_channels must be positive".to_string(),
            ));
        }
        Ok(Conv2dParams { geom, out_channels })
    }

    /// Expected weight shape `(out_channels, c_in * k * k)`.
    pub fn weight_shape(&self) -> Shape {
        Shape::d2(self.out_channels, self.geom.patch_rows())
    }

    /// Expected output shape for a batch of `n` samples.
    pub fn output_shape(&self, n: usize) -> Shape {
        Shape::d4(n, self.out_channels, self.geom.out_h(), self.geom.out_w())
    }

    /// Multiply-accumulate count for one sample — the quantity the
    /// NeuroSim-style cost model multiplies by per-MAC energy.
    pub fn macs(&self) -> u64 {
        self.out_channels as u64 * self.geom.patch_rows() as u64 * self.geom.patch_cols() as u64
    }
}

fn check_input(input: &Tensor, p: &Conv2dParams, op: &'static str) -> Result<usize> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.shape().rank(),
            op,
        });
    }
    let d = input.shape().dims();
    if d[1] != p.geom.in_channels || d[2] != p.geom.in_h || d[3] != p.geom.in_w {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_string(),
            rhs: format!(
                "(n, {}, {}, {})",
                p.geom.in_channels, p.geom.in_h, p.geom.in_w
            ),
            op,
        });
    }
    Ok(d[0])
}

fn check_operands(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: &Conv2dParams,
    op: &'static str,
) -> Result<usize> {
    let n = check_input(input, params, op)?;
    if weight.shape() != &params.weight_shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: weight.shape().to_string(),
            rhs: params.weight_shape().to_string(),
            op,
        });
    }
    if bias.shape() != &Shape::d1(params.out_channels) {
        return Err(TensorError::ShapeMismatch {
            lhs: bias.shape().to_string(),
            rhs: Shape::d1(params.out_channels).to_string(),
            op,
        });
    }
    Ok(n)
}

/// Shared forward body: lowers the batch once, runs one GEMM, scatters
/// bias-added output planes. Returns `(output, batched patch matrix)`.
fn conv2d_forward_impl(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: &Conv2dParams,
    n: usize,
) -> Result<(Tensor, Tensor)> {
    let geom = &params.geom;
    let pc = geom.patch_cols();
    let out_plane = params.out_channels * pc;
    let cols = im2col_batch(input, geom)?; // (c_in*k*k, n*pc)
    let prod = weight.matmul(&cols)?; // (c_out, n*pc)
    let mut out = vec![0.0f32; n * out_plane];
    for s in 0..n {
        let dst = &mut out[s * out_plane..(s + 1) * out_plane];
        for c in 0..params.out_channels {
            let b = bias.as_slice()[c];
            let src = &prod.as_slice()[c * n * pc + s * pc..c * n * pc + (s + 1) * pc];
            for (d, &v) in dst[c * pc..(c + 1) * pc].iter_mut().zip(src) {
                *d = v + b;
            }
        }
    }
    Ok((Tensor::from_vec(params.output_shape(n), out)?, cols))
}

/// Convolution forward pass via batched im2col + a single GEMM.
///
/// `input` is `(n, c_in, h, w)`, `weight` is `(c_out, c_in*k*k)`, `bias` is
/// `(c_out)`. Returns `(n, c_out, out_h, out_w)` and caches the batched
/// patch matrix `(c_in*k*k, n * oh*ow)` for the backward pass.
///
/// # Errors
///
/// Returns shape errors when any operand disagrees with `params`.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: &Conv2dParams,
) -> Result<(Tensor, Tensor)> {
    let n = check_operands(input, weight, bias, params, "conv2d_forward")?;
    conv2d_forward_impl(input, weight, bias, params, n)
}

/// Inference-only convolution forward: identical math to
/// [`conv2d_forward`] but does not return the patch-matrix cache, so
/// evaluation paths (Monte-Carlo trials, `Network::predict`) skip the
/// cache allocation entirely.
///
/// # Errors
///
/// Returns shape errors when any operand disagrees with `params`.
pub fn conv2d_infer(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let n = check_operands(input, weight, bias, params, "conv2d_infer")?;
    conv2d_forward_impl(input, weight, bias, params, n).map(|(out, _)| out)
}

/// Convolution backward pass.
///
/// Given `d_out` `(n, c_out, oh, ow)` and the batched patch matrix cached
/// by [`conv2d_forward`], returns `(d_input, d_weight, d_bias)`. The
/// weight gradient is one fused GEMM over the whole batch (this changes
/// float association versus a per-sample accumulation — gradients are
/// tolerance-checked, not bit-pinned).
///
/// # Errors
///
/// Returns shape errors when operands disagree with `params` or the cache
/// does not match the batch.
pub fn conv2d_backward(
    d_out: &Tensor,
    weight: &Tensor,
    cols_cache: &Tensor,
    params: &Conv2dParams,
) -> Result<(Tensor, Tensor, Tensor)> {
    if d_out.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: d_out.shape().rank(),
            op: "conv2d_backward",
        });
    }
    let n = d_out.shape().dims()[0];
    if d_out.shape() != &params.output_shape(n) {
        return Err(TensorError::ShapeMismatch {
            lhs: d_out.shape().to_string(),
            rhs: params.output_shape(n).to_string(),
            op: "conv2d_backward",
        });
    }
    let geom = &params.geom;
    let pc = geom.patch_cols();
    if cols_cache.shape() != &Shape::d2(geom.patch_rows(), n * pc) {
        return Err(TensorError::ShapeMismatch {
            lhs: cols_cache.shape().to_string(),
            rhs: Shape::d2(geom.patch_rows(), n * pc).to_string(),
            op: "conv2d_backward",
        });
    }
    let out_plane = params.out_channels * pc;

    // Gather d_out (n, c_out, oh, ow) into column-batched layout
    // (c_out, n*pc) matching the cached patch matrix.
    let mut d_mat = vec![0.0f32; params.out_channels * n * pc];
    for s in 0..n {
        let src = &d_out.as_slice()[s * out_plane..(s + 1) * out_plane];
        for c in 0..params.out_channels {
            d_mat[c * n * pc + s * pc..c * n * pc + (s + 1) * pc]
                .copy_from_slice(&src[c * pc..(c + 1) * pc]);
        }
    }
    let d_mat = Tensor::from_vec(Shape::d2(params.out_channels, n * pc), d_mat)?;

    // dW = dOut_mat * cols^T in one GEMM over the batch.
    let d_weight = d_mat.matmul(&cols_cache.transpose()?)?;
    // db = row sums of dOut_mat.
    let mut d_bias = Tensor::zeros(Shape::d1(params.out_channels));
    for c in 0..params.out_channels {
        let sum: f32 = d_mat.as_slice()[c * n * pc..(c + 1) * n * pc].iter().sum();
        d_bias.as_mut_slice()[c] = sum;
    }
    // dInput = col2im_batch(W^T * dOut_mat).
    let d_cols = weight.transpose()?.matmul(&d_mat)?;
    let d_input = col2im_batch(&d_cols, n, geom)?;
    Ok((d_input, d_weight, d_bias))
}

/// Reference direct (nested-loop) convolution used to validate the im2col
/// path in tests. Slow; not for production use.
///
/// # Errors
///
/// Returns shape errors as [`conv2d_forward`] does.
pub fn conv2d_forward_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    params: &Conv2dParams,
) -> Result<Tensor> {
    let n = check_input(input, params, "conv2d_forward_direct")?;
    let geom = &params.geom;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let mut out = Tensor::zeros(params.output_shape(n));
    for s in 0..n {
        for co in 0..params.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.as_slice()[co];
                    for ci in 0..geom.in_channels {
                        for ki in 0..k {
                            for kj in 0..k {
                                let iy = (oy * geom.stride + ki) as isize - geom.padding as isize;
                                let ix = (ox * geom.stride + kj) as isize - geom.padding as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= geom.in_h as isize
                                    || ix >= geom.in_w as isize
                                {
                                    continue;
                                }
                                let x = input
                                    .at(&[s, ci, iy as usize, ix as usize])
                                    .expect("validated bounds");
                                let w = weight
                                    .at(&[co, (ci * k + ki) * k + kj])
                                    .expect("validated bounds");
                                acc += x * w;
                            }
                        }
                    }
                    out.set(&[s, co, oy, ox], acc)?;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedRng;

    fn rand_tensor(shape: Shape, rng: &mut SeedRng) -> Tensor {
        let n = shape.len();
        Tensor::from_vec(shape, (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()).unwrap()
    }

    #[test]
    fn im2col_matches_direct() {
        let mut rng = SeedRng::new(42);
        for &(k, s, p) in &[(1usize, 1usize, 0usize), (3, 1, 1), (3, 2, 1), (5, 1, 2)] {
            let geom = ConvGeometry::new(3, 8, 8, k, s, p).unwrap();
            let params = Conv2dParams::new(geom, 4).unwrap();
            let input = rand_tensor(Shape::d4(2, 3, 8, 8), &mut rng);
            let weight = rand_tensor(params.weight_shape(), &mut rng);
            let bias = rand_tensor(Shape::d1(4), &mut rng);
            let (fast, _) = conv2d_forward(&input, &weight, &bias, &params).unwrap();
            let slow = conv2d_forward_direct(&input, &weight, &bias, &params).unwrap();
            let max_err = fast
                .as_slice()
                .iter()
                .zip(slow.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_err < 1e-4, "k={k} s={s} p={p} err={max_err}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeedRng::new(7);
        let geom = ConvGeometry::new(2, 5, 5, 3, 1, 1).unwrap();
        let params = Conv2dParams::new(geom, 3).unwrap();
        let input = rand_tensor(Shape::d4(1, 2, 5, 5), &mut rng);
        let weight = rand_tensor(params.weight_shape(), &mut rng);
        let bias = rand_tensor(Shape::d1(3), &mut rng);

        // Loss = sum of outputs, so dOut = ones.
        let loss = |w: &Tensor, b: &Tensor, x: &Tensor| -> f32 {
            conv2d_forward(x, w, b, &params).unwrap().0.sum()
        };
        let (out, cache) = conv2d_forward(&input, &weight, &bias, &params).unwrap();
        let d_out = Tensor::ones(out.shape().clone());
        let (d_in, d_w, d_b) = conv2d_backward(&d_out, &weight, &cache, &params).unwrap();

        let eps = 1e-2f32;
        // Check a sample of weight gradients.
        for idx in [0usize, 7, 23, d_w.len() - 1] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&wp, &bias, &input) - loss(&wm, &bias, &input)) / (2.0 * eps);
            let an = d_w.as_slice()[idx];
            assert!(
                (fd - an).abs() < 0.05 * an.abs().max(1.0),
                "w[{idx}]: fd={fd} an={an}"
            );
        }
        // Bias gradients.
        for idx in 0..3 {
            let mut bp = bias.clone();
            bp.as_mut_slice()[idx] += eps;
            let mut bm = bias.clone();
            bm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&weight, &bp, &input) - loss(&weight, &bm, &input)) / (2.0 * eps);
            let an = d_b.as_slice()[idx];
            assert!(
                (fd - an).abs() < 0.05 * an.abs().max(1.0),
                "b[{idx}]: fd={fd} an={an}"
            );
        }
        // Input gradients.
        for idx in [0usize, 13, 31, d_in.len() - 1] {
            let mut xp = input.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = input.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&weight, &bias, &xp) - loss(&weight, &bias, &xm)) / (2.0 * eps);
            let an = d_in.as_slice()[idx];
            assert!(
                (fd - an).abs() < 0.05 * an.abs().max(1.0),
                "x[{idx}]: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut rng = SeedRng::new(11);
        let geom = ConvGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        let params = Conv2dParams::new(geom, 4).unwrap();
        let input = rand_tensor(Shape::d4(2, 3, 8, 8), &mut rng);
        let weight = rand_tensor(params.weight_shape(), &mut rng);
        let bias = rand_tensor(Shape::d1(4), &mut rng);
        let (full, _) = conv2d_forward(&input, &weight, &bias, &params).unwrap();
        let lean = conv2d_infer(&input, &weight, &bias, &params).unwrap();
        assert_eq!(full.as_slice(), lean.as_slice());
    }

    #[test]
    fn macs_counts() {
        let geom = ConvGeometry::new(3, 32, 32, 3, 1, 1).unwrap();
        let params = Conv2dParams::new(geom, 16).unwrap();
        // 16 * (3*3*3) * (32*32)
        assert_eq!(params.macs(), 16 * 27 * 1024);
    }

    #[test]
    fn rejects_mismatched_operands() {
        let geom = ConvGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        let params = Conv2dParams::new(geom, 4).unwrap();
        let input = Tensor::zeros(Shape::d4(1, 2, 8, 8)); // wrong channels
        let weight = Tensor::zeros(params.weight_shape());
        let bias = Tensor::zeros(Shape::d1(4));
        assert!(conv2d_forward(&input, &weight, &bias, &params).is_err());

        let input = Tensor::zeros(Shape::d4(1, 3, 8, 8));
        let bad_w = Tensor::zeros(Shape::d2(4, 10));
        assert!(conv2d_forward(&input, &bad_w, &bias, &params).is_err());
    }

    #[test]
    fn zero_out_channels_rejected() {
        let geom = ConvGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        assert!(Conv2dParams::new(geom, 0).is_err());
    }
}
