//! Softmax cross-entropy loss.

use super::activation::softmax_rows;
use crate::{Result, Shape, Tensor, TensorError};

/// One-hot encodes class labels into an `(n, classes)` matrix.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] when a label exceeds
/// `classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Result<Tensor> {
    let mut out = vec![0.0f32; labels.len() * classes];
    for (r, &l) in labels.iter().enumerate() {
        if l >= classes {
            return Err(TensorError::IndexOutOfBounds {
                index: l,
                bound: classes,
            });
        }
        out[r * classes + l] = 1.0;
    }
    Tensor::from_vec(Shape::d2(labels.len(), classes), out)
}

/// Mean softmax cross-entropy over a batch of logits.
///
/// Returns `(loss, d_logits)` where `d_logits = (softmax - onehot) / n` —
/// the gradient of the mean loss with respect to the logits, ready to feed
/// straight into the backward pass.
///
/// # Errors
///
/// Returns shape errors when `labels.len()` does not match the batch or a
/// label is out of range.
pub fn cross_entropy_loss(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
            op: "cross_entropy_loss",
        });
    }
    let (n, c) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    if labels.len() != n {
        return Err(TensorError::ShapeDataMismatch {
            expected: n,
            actual: labels.len(),
        });
    }
    let probs = softmax_rows(logits)?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let g = grad.as_mut_slice();
    for (r, &l) in labels.iter().enumerate() {
        if l >= c {
            return Err(TensorError::IndexOutOfBounds { index: l, bound: c });
        }
        let p = probs.as_slice()[r * c + l].max(1e-12);
        loss -= p.ln();
        g[r * c + l] -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    for v in g.iter_mut() {
        *v *= inv_n;
    }
    Ok((loss * inv_n, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_layout() {
        let t = one_hot(&[2, 0], 3).unwrap();
        assert_eq!(t.as_slice(), &[0., 0., 1., 1., 0., 0.]);
        assert!(one_hot(&[3], 3).is_err());
    }

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(Shape::d2(1, 3), vec![10.0, -10.0, -10.0]).unwrap();
        let (loss, _) = cross_entropy_loss(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn uniform_prediction_is_log_c() {
        let logits = Tensor::zeros(Shape::d2(1, 10));
        let (loss, _) = cross_entropy_loss(&logits, &[4]).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits =
            Tensor::from_vec(Shape::d2(2, 3), vec![0.5, -0.2, 0.9, 1.5, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0usize];
        let (_, grad) = cross_entropy_loss(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = cross_entropy_loss(&lp, &labels).unwrap().0;
            let fm = cross_entropy_loss(&lm, &labels).unwrap().0;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[idx]).abs() < 1e-3,
                "idx {idx}: fd={fd} an={}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(Shape::d2(1, 4), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let (_, grad) = cross_entropy_loss(&logits, &[1]).unwrap();
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    fn label_batch_mismatch_rejected() {
        let logits = Tensor::zeros(Shape::d2(2, 3));
        assert!(cross_entropy_loss(&logits, &[0]).is_err());
        assert!(cross_entropy_loss(&logits, &[0, 5]).is_err());
    }
}
