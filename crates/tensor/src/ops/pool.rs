//! Pooling layers: 2×2 stride-2 max pooling and global average pooling.

use crate::{Result, Shape, Tensor, TensorError};

fn check_rank4(t: &Tensor, op: &'static str) -> Result<[usize; 4]> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.shape().rank(),
            op,
        });
    }
    let d = t.shape().dims();
    Ok([d[0], d[1], d[2], d[3]])
}

/// 2×2 stride-2 max pooling over an NCHW batch.
///
/// Returns the pooled tensor and the flat argmax index of every output
/// element (needed by [`maxpool2_backward`]). Odd trailing rows/columns are
/// dropped, matching common framework behaviour.
///
/// # Errors
///
/// Returns rank errors for non-NCHW input or
/// [`TensorError::InvalidArgument`] when the spatial plane is smaller
/// than 2×2.
pub fn maxpool2_forward(input: &Tensor) -> Result<(Tensor, Vec<usize>)> {
    let [n, c, h, w] = check_rank4(input, "maxpool2_forward")?;
    if h < 2 || w < 2 {
        return Err(TensorError::InvalidArgument(format!(
            "maxpool2 needs spatial plane >= 2x2, got {h}x{w}"
        )));
    }
    let (oh, ow) = (h / 2, w / 2);
    let src = input.as_slice();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_idx = base + (2 * oy) * w + 2 * ox;
                    let mut best = src[best_idx];
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = base + (2 * oy + dy) * w + (2 * ox + dx);
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((s * c + ch) * oh + oy) * ow + ox;
                    out[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
    }
    Ok((Tensor::from_vec(Shape::d4(n, c, oh, ow), out)?, arg))
}

/// Backward pass of 2×2 max pooling: routes each upstream gradient to the
/// input position that won the max.
///
/// # Errors
///
/// Returns shape errors when `d_out` and `argmax` disagree.
pub fn maxpool2_backward(d_out: &Tensor, argmax: &[usize], input_shape: &Shape) -> Result<Tensor> {
    if d_out.len() != argmax.len() {
        return Err(TensorError::ShapeDataMismatch {
            expected: d_out.len(),
            actual: argmax.len(),
        });
    }
    let mut d_input = Tensor::zeros(input_shape.clone());
    let dst = d_input.as_mut_slice();
    for (&g, &idx) in d_out.as_slice().iter().zip(argmax) {
        if idx >= dst.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: idx,
                bound: dst.len(),
            });
        }
        dst[idx] += g;
    }
    Ok(d_input)
}

/// Global average pooling: `(n, c, h, w) -> (n, c)`.
///
/// # Errors
///
/// Returns a rank error for non-NCHW input.
pub fn avgpool_global_forward(input: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_rank4(input, "avgpool_global_forward")?;
    let plane = h * w;
    let src = input.as_slice();
    let mut out = vec![0.0f32; n * c];
    for (i, o) in out.iter_mut().enumerate() {
        let base = i * plane;
        *o = src[base..base + plane].iter().sum::<f32>() / plane as f32;
    }
    Tensor::from_vec(Shape::d2(n, c), out)
}

/// Backward pass of global average pooling: spreads each gradient evenly
/// over its spatial plane.
///
/// # Errors
///
/// Returns shape errors when operands disagree.
pub fn avgpool_global_backward(d_out: &Tensor, input_shape: &Shape) -> Result<Tensor> {
    if input_shape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_shape.rank(),
            op: "avgpool_global_backward",
        });
    }
    let d = input_shape.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    if d_out.shape() != &Shape::d2(n, c) {
        return Err(TensorError::ShapeMismatch {
            lhs: d_out.shape().to_string(),
            rhs: Shape::d2(n, c).to_string(),
            op: "avgpool_global_backward",
        });
    }
    let plane = h * w;
    let mut out = vec![0.0f32; n * c * plane];
    for (i, &g) in d_out.as_slice().iter().enumerate() {
        let v = g / plane as f32;
        for o in &mut out[i * plane..(i + 1) * plane] {
            *o = v;
        }
    }
    Tensor::from_vec(input_shape.clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        let input = Tensor::from_vec(
            Shape::d4(1, 1, 4, 4),
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        )
        .unwrap();
        let (out, arg) = maxpool2_forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[4., 8., 12., 16.]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let input = Tensor::zeros(Shape::d4(1, 1, 5, 5));
        let (out, _) = maxpool2_forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn maxpool_backward_routes_gradient() {
        let input = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![1., 9., 3., 4.]).unwrap();
        let (_, arg) = maxpool2_forward(&input).unwrap();
        let d_out = Tensor::from_vec(Shape::d4(1, 1, 1, 1), vec![5.0]).unwrap();
        let d_in = maxpool2_backward(&d_out, &arg, input.shape()).unwrap();
        assert_eq!(d_in.as_slice(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn maxpool_rejects_tiny_plane() {
        let input = Tensor::zeros(Shape::d4(1, 1, 1, 4));
        assert!(maxpool2_forward(&input).is_err());
    }

    #[test]
    fn avgpool_mean() {
        let input = Tensor::from_vec(
            Shape::d4(1, 2, 2, 2),
            vec![1., 2., 3., 4., 10., 20., 30., 40.],
        )
        .unwrap();
        let out = avgpool_global_forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[2.5, 25.0]);
    }

    #[test]
    fn avgpool_backward_spreads() {
        let shape = Shape::d4(1, 1, 2, 2);
        let d_out = Tensor::from_vec(Shape::d2(1, 1), vec![8.0]).unwrap();
        let d_in = avgpool_global_backward(&d_out, &shape).unwrap();
        assert_eq!(d_in.as_slice(), &[2., 2., 2., 2.]);
    }

    #[test]
    fn avgpool_grad_is_adjoint() {
        // <avg(x), y> == <x, avg^T(y)>
        let x = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![1., 2., 3., 4.]).unwrap();
        let y = Tensor::from_vec(Shape::d2(1, 1), vec![3.0]).unwrap();
        let lhs = avgpool_global_forward(&x).unwrap().as_slice()[0] * 3.0;
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(avgpool_global_backward(&y, x.shape()).unwrap().as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-6);
    }
}
