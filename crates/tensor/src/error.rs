use std::fmt;

/// Error type for all fallible operations in this crate.
///
/// Follows C-GOOD-ERR: implements [`std::error::Error`], `Send`, `Sync`,
/// and renders a lowercase, concise message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// buffer length.
    ShapeDataMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two shapes were incompatible for the attempted operation.
    ShapeMismatch {
        /// Left-hand shape, rendered.
        lhs: String,
        /// Right-hand shape, rendered.
        rhs: String,
        /// Operation that failed.
        op: &'static str,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Rank of the tensor that was provided.
        actual: usize,
        /// Operation that failed.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat or axis index.
        index: usize,
        /// The bound that was violated.
        bound: usize,
    },
    /// A configuration value was invalid (e.g. zero-sized kernel).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but buffer holds {actual}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "incompatible shapes {lhs} and {rhs} for {op}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op} requires rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (bound {bound})")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TensorError::ShapeDataMismatch {
            expected: 6,
            actual: 4,
        };
        let s = e.to_string();
        assert!(s.starts_with("shape implies"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(TensorError::InvalidArgument("x".into()));
        assert!(e.to_string().contains("invalid argument"));
    }
}
