//! Deterministic random number utilities.
//!
//! Every stochastic component in the workspace (weight init, dataset
//! synthesis, Monte-Carlo variation sampling, RL exploration, the simulated
//! LLM's tie-breaking) draws from a [`SeedRng`] so that experiments are
//! exactly reproducible from a single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable RNG wrapper with the distributions this workspace needs.
///
/// # Example
///
/// ```
/// use lcda_tensor::rng::SeedRng;
/// let mut a = SeedRng::new(42);
/// let mut b = SeedRng::new(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeedRng {
    inner: StdRng,
}

impl SeedRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        SeedRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG, useful for giving each Monte-Carlo
    /// trial or parallel worker its own stream.
    pub fn fork(&mut self, salt: u64) -> SeedRng {
        let s: u64 = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeedRng::new(s)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index bound must be positive");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Box–Muller keeps us independent of rand_distr.
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples an index from an (unnormalized, non-negative) weight vector.
    ///
    /// Falls back to uniform sampling when all weights are zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f32 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return self.index(weights.len());
        }
        let mut target = self.uniform(0.0, total);
        for (i, &w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A raw `u64`, for deriving further seeds.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeedRng::new(7);
        let mut b = SeedRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_range() {
        let mut r = SeedRng::new(3);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SeedRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn weighted_index_prefers_heavy() {
        let mut r = SeedRng::new(5);
        let w = [0.0, 0.0, 10.0, 0.1];
        let mut counts = [0usize; 4];
        for _ in 0..1000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 900);
    }

    #[test]
    fn weighted_index_all_zero_is_uniform() {
        let mut r = SeedRng::new(5);
        let w = [0.0, 0.0, 0.0];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.weighted_index(&w)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SeedRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeedRng::new(13);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SeedRng::new(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
