//! Weight initializers.
//!
//! The trained-evaluator path of LCDA builds a fresh CNN per design
//! candidate; these initializers give each layer a sane starting point.

use crate::rng::SeedRng;
use crate::{Shape, Tensor};

/// Weight initialization strategy.
///
/// # Example
///
/// ```
/// use lcda_tensor::{Shape, init::Init, rng::SeedRng};
/// let mut rng = SeedRng::new(1);
/// let w = Init::XavierUniform.tensor(Shape::d2(64, 32), 32, 64, &mut rng);
/// assert_eq!(w.len(), 64 * 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// All zeros — used for biases.
    Zeros,
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    #[default]
    XavierUniform,
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU networks.
    HeNormal,
    /// Uniform in `[-0.05, 0.05]`.
    SmallUniform,
}

impl Init {
    /// Materializes a tensor of the given shape.
    ///
    /// `fan_in` / `fan_out` are the layer's input/output connectivity used
    /// by the scaled schemes; pass the tensor's dimensions for dense layers
    /// and `k*k*c` terms for convolutions.
    pub fn tensor(self, shape: Shape, fan_in: usize, fan_out: usize, rng: &mut SeedRng) -> Tensor {
        let n = shape.len();
        let data: Vec<f32> = match self {
            Init::Zeros => vec![0.0; n],
            Init::XavierUniform => {
                let a = (6.0 / (fan_in.max(1) + fan_out.max(1)) as f32).sqrt();
                (0..n).map(|_| rng.uniform(-a, a)).collect()
            }
            Init::HeNormal => {
                let s = (2.0 / fan_in.max(1) as f32).sqrt();
                (0..n).map(|_| rng.normal_with(0.0, s)).collect()
            }
            Init::SmallUniform => (0..n).map(|_| rng.uniform(-0.05, 0.05)).collect(),
        };
        Tensor::from_vec(shape, data).expect("shape/data lengths match by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_zero() {
        let mut rng = SeedRng::new(0);
        let t = Init::Zeros.tensor(Shape::d1(16), 16, 16, &mut rng);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = SeedRng::new(1);
        let fan_in = 100;
        let fan_out = 100;
        let a = (6.0 / 200.0f32).sqrt();
        let t = Init::XavierUniform.tensor(Shape::d1(10_000), fan_in, fan_out, &mut rng);
        assert!(t.max() <= a && t.min() >= -a);
        // Should actually spread across the range.
        assert!(t.std() > a / 4.0);
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = SeedRng::new(2);
        let t = Init::HeNormal.tensor(Shape::d1(50_000), 128, 64, &mut rng);
        let expected = (2.0f32 / 128.0).sqrt();
        assert!((t.std() - expected).abs() < expected * 0.1);
        assert!(t.mean().abs() < expected * 0.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SeedRng::new(5);
        let mut b = SeedRng::new(5);
        let ta = Init::HeNormal.tensor(Shape::d1(32), 8, 8, &mut a);
        let tb = Init::HeNormal.tensor(Shape::d1(32), 8, 8, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn zero_fan_does_not_divide_by_zero() {
        let mut rng = SeedRng::new(6);
        let t = Init::XavierUniform.tensor(Shape::d1(4), 0, 0, &mut rng);
        assert!(t.as_slice().iter().all(|x| x.is_finite()));
    }
}
