//! Property-based robustness tests: the simulated models must produce
//! valid, parseable designs for arbitrary histories, and the parser must
//! never panic on arbitrary text.

use lcda_llm::adaptive::AdaptiveLlm;
use lcda_llm::design::DesignChoices;
use lcda_llm::parse::{parse_design, parse_history};
use lcda_llm::persona::Persona;
use lcda_llm::prompt::{HistoryEntry, PromptBuilder, PromptObjective};
use lcda_llm::sim::SimLlm;
use lcda_llm::LanguageModel;
use proptest::prelude::*;

fn arb_history(max: usize) -> impl Strategy<Value = Vec<HistoryEntry>> {
    let choices = DesignChoices::nacim_default();
    let slots: Vec<usize> = (0..choices.slot_count())
        .map(|s| choices.slot_options(s))
        .collect();
    let one = (
        slots.into_iter().map(|n| 0..n).collect::<Vec<_>>(),
        -1.0f64..1.0,
    )
        .prop_map(move |(idx, perf)| HistoryEntry {
            design: DesignChoices::nacim_default().decode(&idx).unwrap(),
            performance: perf,
        });
    prop::collection::vec(one, 0..max)
}

proptest! {
    /// For ANY history, every persona and the adaptive model answer with
    /// text that parses into an in-space design.
    #[test]
    fn models_always_answer_parseably(
        history in arb_history(12),
        seed in 0u64..500,
        objective in prop::sample::select(vec![
            PromptObjective::AccuracyEnergy,
            PromptObjective::AccuracyLatency,
        ]),
    ) {
        let choices = DesignChoices::nacim_default();
        let prompt = PromptBuilder::new(&choices).objective(objective).render(&history);
        for persona in [Persona::Pretrained, Persona::FineTuned] {
            let response = SimLlm::new(persona, seed).complete(&prompt).unwrap();
            let d = parse_design(&response, &choices).unwrap();
            prop_assert!(choices.contains(&d).is_ok());
        }
        let response = AdaptiveLlm::new(seed).complete(&prompt).unwrap();
        prop_assert!(parse_design(&response, &choices).is_ok());
    }

    /// The naive persona (its prompt has no co-design framing) also always
    /// answers parseably.
    #[test]
    fn naive_always_answers_parseably(history in arb_history(8), seed in 0u64..200) {
        let choices = DesignChoices::nacim_default();
        let prompt = PromptBuilder::new(&choices)
            .objective(PromptObjective::Naive)
            .render(&history);
        let response = SimLlm::new(Persona::Naive, seed).complete(&prompt).unwrap();
        prop_assert!(parse_design(&response, &choices).is_ok());
    }

    /// parse_design never panics on arbitrary text — it returns Ok or Err.
    #[test]
    fn parser_is_total(text in ".{0,200}") {
        let choices = DesignChoices::nacim_default();
        let _ = parse_design(&text, &choices);
    }

    /// parse_history never panics and only returns in-space designs.
    #[test]
    fn history_parser_is_total(text in ".{0,400}") {
        let choices = DesignChoices::nacim_default();
        for (d, _) in parse_history(&text, &choices) {
            prop_assert!(choices.contains(&d).is_ok());
        }
    }
}
