//! # lcda-llm
//!
//! The LLM machinery of the LCDA reproduction: the Algorithm-1 prompt
//! template, the response parser the design generator uses, and — in place
//! of GPT-4, which is unavailable offline — a deterministic **simulated
//! LLM** ([`sim::SimLlm`]) whose knowledge base encodes exactly the
//! behaviours the paper attributes to the pretrained model:
//!
//! - sensible channel scaling: each layer's output channels ≥ its input
//!   channels, never growing by more than 4× (§IV-A),
//! - a preference for well-behaved kernels (no degenerate `(1,7)` shapes),
//! - **misconception 1**: "larger kernel sizes enhance accuracy" — true in
//!   general but wrong on CiM hardware where larger kernels amplify device
//!   variation (§IV-B),
//! - **misconception 2**: "smaller kernel sizes imply lower latency" —
//!   wrong on crossbars where a 5×5 kernel can under-utilize the array
//!   (§IV-B).
//!
//! The [`sim::SimLlm`] consumes the *rendered prompt text* and returns
//! *response text* that must survive the same parsing path a GPT-4 answer
//! would, so the whole prompt → LLM → parse loop of Algorithm 2 is
//! exercised end to end. A [`persona::Persona`] selects which knowledge
//! the model has: the pretrained corner (with both misconceptions), a
//! fine-tuned corner (the paper's future-work fix), and a naive corner
//! (the Fig.-5 ablation that strips the co-design framing).
//!
//! The [`middleware`] module layers resilience around any
//! [`LanguageModel`]: deterministic fault injection, timeouts, seeded
//! retry with backoff, and a circuit breaker — all on a simulated clock
//! so fault-tolerance tests stay instant and bit-reproducible.
//!
//! # Example
//!
//! ```
//! use lcda_llm::design::DesignChoices;
//! use lcda_llm::prompt::PromptBuilder;
//! use lcda_llm::sim::SimLlm;
//! use lcda_llm::persona::Persona;
//! use lcda_llm::parse::parse_design;
//! use lcda_llm::LanguageModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let choices = DesignChoices::nacim_default();
//! let prompt = PromptBuilder::new(&choices).render(&[]);
//! let mut llm = SimLlm::new(Persona::Pretrained, 42);
//! let response = llm.complete(&prompt)?;
//! let design = parse_design(&response, &choices)?;
//! assert_eq!(design.conv.len(), 6);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;

pub mod adaptive;
pub mod design;
pub mod middleware;
pub mod obs;
pub mod parse;
pub mod persona;
pub mod prompt;
pub mod sim;
pub mod transcript;

pub use error::LlmError;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LlmError>;

/// Anything that can answer a co-design prompt with text.
///
/// Implemented by [`sim::SimLlm`]; a networked GPT-4 client would
/// implement the same trait in a deployment with API access.
pub trait LanguageModel {
    /// Produces the model's textual response to a rendered prompt.
    ///
    /// # Errors
    ///
    /// Returns an error when the prompt is unintelligible to the model
    /// (e.g. no design-space section).
    fn complete(&mut self, prompt: &str) -> Result<String>;

    /// A short model identifier for transcripts.
    fn model_name(&self) -> &str;
}
