//! The adaptive model: online belief correction from observed rewards.
//!
//! The paper concludes that "optimal performance in co-design tasks often
//! requires fine-tuning LLMs, which is not possible with commercial LLMs
//! that function as black boxes". [`AdaptiveLlm`] operationalizes that
//! conclusion without touching model weights: it keeps the pretrained
//! persona's knowledge as a *prior*, and fits a ridge-regression
//! correction from design features to the rewards reported back in the
//! prompt history. Once enough evidence accumulates, proposals are ranked
//! by the corrected predictor instead of the raw belief — so a
//! misconception (e.g. "smaller kernels imply lower latency") gets
//! unlearned from data within a handful of episodes.
//!
//! The correction is re-fit from scratch on every prompt, purely from the
//! text the model receives — no side channel, exactly the information a
//! real in-context-learning LLM would have.

use crate::design::CandidateDesign;
use crate::parse::parse_history;
use crate::persona::{KnowledgeBase, Persona};
use crate::prompt::PromptObjective;
use crate::sim::{neighborhood, parse_choices};
use crate::{LanguageModel, LlmError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Minimum observations before the fitted correction takes over from the
/// prior.
const MIN_EVIDENCE: usize = 6;

/// Ridge regularization strength.
const RIDGE_LAMBDA: f64 = 0.01;

/// A simulated LLM that fine-tunes its ranking on observed rewards.
#[derive(Debug)]
pub struct AdaptiveLlm {
    knowledge: KnowledgeBase,
    rng: StdRng,
    name: String,
}

impl AdaptiveLlm {
    /// Creates the adaptive model. It starts from the pretrained persona's
    /// knowledge (including the misconceptions) — the point is to watch it
    /// correct them.
    pub fn new(seed: u64) -> Self {
        AdaptiveLlm {
            knowledge: Persona::Pretrained.knowledge(),
            rng: StdRng::seed_from_u64(seed),
            name: "sim-llm/adaptive".to_string(),
        }
    }

    /// Feature vector of a design for the reward regression: intercept,
    /// kernel statistics (the axis the misconceptions corrupt), capacity
    /// and hardware features, and the prior's own belief as one feature
    /// (so in the small-data regime the fit can simply ride the prior).
    fn features(&self, design: &CandidateDesign, objective: PromptObjective) -> Vec<f64> {
        let n = design.conv.len().max(1) as f64;
        let mean_k: f64 = design.conv.iter().map(|c| f64::from(c.kernel)).sum::<f64>() / n;
        let mean_c: f64 = design
            .conv
            .iter()
            .map(|c| f64::from(c.channels))
            .sum::<f64>()
            / n;
        let last_c = design
            .conv
            .last()
            .map(|c| f64::from(c.channels))
            .unwrap_or(0.0);
        vec![
            1.0,
            mean_k / 7.0,
            (mean_k / 7.0) * (mean_k / 7.0),
            mean_c / 128.0,
            last_c / 128.0,
            f64::from(design.hw.adc_bits) / 8.0,
            f64::from(design.hw.cell_bits) / 4.0,
            f64::from(design.hw.xbar_size) / 256.0,
            self.knowledge.believed_score(design, objective),
        ]
    }

    /// Fits ridge regression `w = (XᵀX + λI)⁻¹ Xᵀy` and returns the
    /// weights, or `None` when the system is degenerate.
    fn fit(x_rows: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
        let d = x_rows.first()?.len();
        // Normal equations.
        let mut a = vec![vec![0.0f64; d]; d];
        let mut b = vec![0.0f64; d];
        for (row, &target) in x_rows.iter().zip(y) {
            for i in 0..d {
                for j in 0..d {
                    a[i][j] += row[i] * row[j];
                }
                b[i] += row[i] * target;
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += RIDGE_LAMBDA;
        }
        solve_linear(a, b)
    }

    fn predict(w: &[f64], features: &[f64]) -> f64 {
        w.iter().zip(features).map(|(a, b)| a * b).sum()
    }
}

/// Gaussian elimination with partial pivoting; `None` on singularity.
#[allow(clippy::needless_range_loop)] // index form mirrors the math
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

impl LanguageModel for AdaptiveLlm {
    fn complete(&mut self, prompt: &str) -> Result<String> {
        let objective = detect_objective(prompt)?;
        let choices = parse_choices(prompt)?;
        let history = parse_history(prompt, &choices);

        if history.is_empty() {
            return Ok(self.knowledge.prior_design(&choices).to_response_text());
        }
        let explored: HashSet<&CandidateDesign> = history.iter().map(|(d, _)| d).collect();
        let best = history
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(d, _)| d.clone())
            .expect("history non-empty");

        let mut pool = neighborhood(&best, &choices);
        pool.retain(|d| !explored.contains(d));
        pool.retain(|d| self.knowledge.acceptable(d, 3));
        if pool.is_empty() {
            // Jump to a random feasible design (same escape hatch as the
            // base model).
            for _ in 0..256 {
                let idx: Vec<usize> = (0..choices.slot_count())
                    .map(|s| self.rng.gen_range(0..choices.slot_options(s)))
                    .collect();
                let d = choices.decode(&idx).expect("in range");
                if !explored.contains(&d) && self.knowledge.acceptable(&d, 3) {
                    return Ok(d.to_response_text());
                }
            }
            return Ok(best.to_response_text());
        }

        // Fit the correction when evidence allows; exclude −1 hardware
        // failures from the regression (they carry no gradient signal,
        // only a feasibility label the prior already encodes).
        let evidence: Vec<&(CandidateDesign, f64)> =
            history.iter().filter(|(_, perf)| *perf > -0.999).collect();
        let weights = if evidence.len() >= MIN_EVIDENCE {
            let x: Vec<Vec<f64>> = evidence
                .iter()
                .map(|(d, _)| self.features(d, objective))
                .collect();
            let y: Vec<f64> = evidence.iter().map(|(_, p)| *p).collect();
            Self::fit(&x, &y)
        } else {
            None
        };

        let mut scored: Vec<(f64, CandidateDesign)> = pool
            .into_iter()
            .map(|d| {
                let score = match &weights {
                    Some(w) => Self::predict(w, &self.features(&d, objective)),
                    None => self.knowledge.believed_score(&d, objective),
                };
                (score + self.rng.gen_range(-0.005..0.005), d)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        Ok(scored[0].1.to_response_text())
    }

    fn model_name(&self) -> &str {
        &self.name
    }
}

fn detect_objective(prompt: &str) -> Result<PromptObjective> {
    if prompt.contains("objective: accuracy-energy") {
        Ok(PromptObjective::AccuracyEnergy)
    } else if prompt.contains("objective: accuracy-latency") {
        Ok(PromptObjective::AccuracyLatency)
    } else if prompt.contains("objective: generic") {
        Ok(PromptObjective::Naive)
    } else {
        Err(LlmError::UnintelligiblePrompt(
            "no objective marker found".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignChoices;
    use crate::parse::parse_design;
    use crate::prompt::{HistoryEntry, PromptBuilder};

    #[test]
    fn solver_solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  →  x = 1, y = 3
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_linear(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solver_rejects_singular_system() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn ridge_fit_recovers_linear_relation() {
        // y = 3·f1 − 2·f2 over distinct feature rows.
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![1.0, i as f64 / 10.0, (i * i) as f64 / 100.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[1] - 2.0 * r[2]).collect();
        let w = AdaptiveLlm::fit(&x, &y).unwrap();
        let pred = AdaptiveLlm::predict(&w, &x[7]);
        // Ridge bias keeps this approximate.
        assert!((pred - y[7]).abs() < 0.08, "pred {pred} vs {}", y[7]);
    }

    /// An environment whose true reward punishes exactly what the
    /// pretrained persona's misconception rewards: kernels above 3 under
    /// the latency objective. The adaptive model must learn to stop
    /// proposing them; the frozen pretrained model keeps making the
    /// mistake.
    fn kernel_punishing_reward(d: &CandidateDesign) -> f64 {
        let mean_k: f64 =
            d.conv.iter().map(|c| f64::from(c.kernel)).sum::<f64>() / d.conv.len() as f64;
        1.0 - 0.5 * (mean_k - 3.0).abs()
            + d.conv.iter().map(|c| f64::from(c.channels)).sum::<f64>() / 10_000.0
    }

    fn run_model<M: LanguageModel>(model: &mut M, episodes: usize) -> (Vec<f64>, Vec<f64>) {
        let choices = DesignChoices::nacim_default();
        let builder = PromptBuilder::new(&choices).objective(PromptObjective::AccuracyLatency);
        let mut history = Vec::new();
        let mut rewards = Vec::new();
        let mut kernel_errors = Vec::new();
        for _ in 0..episodes {
            let prompt = builder.render(&history);
            let response = model.complete(&prompt).unwrap();
            let design = parse_design(&response, &choices).unwrap();
            let reward = kernel_punishing_reward(&design);
            let mean_k: f64 = design.conv.iter().map(|c| f64::from(c.kernel)).sum::<f64>()
                / design.conv.len() as f64;
            kernel_errors.push((mean_k - 3.0).abs());
            rewards.push(reward);
            history.push(HistoryEntry {
                design,
                performance: reward,
            });
        }
        (rewards, kernel_errors)
    }

    #[test]
    fn adaptive_outgrows_the_kernel_misconception() {
        // Average over seeds: the comparison is a distributional claim,
        // not a per-trajectory one.
        let mut adaptive_late = 0.0;
        let mut frozen_late = 0.0;
        let mut adaptive_kerr = 0.0;
        let mut frozen_kerr = 0.0;
        let seeds = [3u64, 4, 5, 6];
        for &seed in &seeds {
            let (a, ak) = run_model(&mut AdaptiveLlm::new(seed), 24);
            let (f, fk) = run_model(&mut crate::sim::SimLlm::new(Persona::Pretrained, seed), 24);
            let late = |xs: &[f64]| xs[12..].iter().sum::<f64>() / 12.0;
            adaptive_late += late(&a);
            frozen_late += late(&f);
            adaptive_kerr += late(&ak);
            frozen_kerr += late(&fk);
        }
        let n = seeds.len() as f64;
        assert!(
            adaptive_late / n >= frozen_late / n,
            "adaptive late mean {:.3} should not trail frozen {:.3}",
            adaptive_late / n,
            frozen_late / n
        );
        // The behavioural claim: the adaptive model's late-phase kernel
        // choices sit closer to the true optimum (k=3) than the frozen
        // model's misconception-driven ones.
        assert!(
            adaptive_kerr / n < frozen_kerr / n,
            "adaptive |mean_k-3| {:.3} should beat frozen {:.3}",
            adaptive_kerr / n,
            frozen_kerr / n
        );
    }

    #[test]
    fn adaptive_is_deterministic_and_parseable() {
        let choices = DesignChoices::nacim_default();
        let prompt = PromptBuilder::new(&choices).render(&[]);
        let r1 = AdaptiveLlm::new(5).complete(&prompt).unwrap();
        let r2 = AdaptiveLlm::new(5).complete(&prompt).unwrap();
        assert_eq!(r1, r2);
        parse_design(&r1, &choices).unwrap();
    }

    #[test]
    fn adaptive_rejects_unintelligible_prompts() {
        let mut m = AdaptiveLlm::new(0);
        assert!(m.complete("what's for lunch?").is_err());
    }

    #[test]
    fn model_name() {
        assert_eq!(AdaptiveLlm::new(0).model_name(), "sim-llm/adaptive");
    }
}
