//! Composable resilience middleware over the [`LanguageModel`] trait.
//!
//! Real co-design agents spend hours driving flaky LLM endpoints: rate
//! limits, timeouts, truncated responses, latency spikes. This module
//! provides the middleware stack that makes the Algorithm-2 loop survive
//! all of them **deterministically** — every stochastic decision (backoff
//! jitter, injected faults) draws from a seeded RNG, and all timing runs
//! on a [`SimClock`] instead of the wall clock, so tests are instant and
//! bit-reproducible.
//!
//! The stack composes like ordinary wrappers (innermost first):
//!
//! ```text
//! CircuitBreaker<RetryModel<TimeoutModel<FaultyModel<SimLlm>>>>
//! ```
//!
//! - [`FaultyModel`] — deterministic fault injection from a [`FaultPlan`]
//!   schedule: transient errors, garbage/truncated responses, latency
//!   spikes. Faults *intercept* the call — the inner model is only
//!   invoked on fault-free (or latency-spiked) calls, so the inner
//!   model's RNG stream is identical to a fault-free run.
//! - [`TimeoutModel`] — converts calls whose simulated latency exceeds a
//!   budget into [`LlmError::Timeout`].
//! - [`RetryModel`] — retries transient errors with seeded exponential
//!   backoff plus jitter, advancing the [`SimClock`] instead of sleeping.
//! - [`CircuitBreaker`] — after N consecutive failures, opens and
//!   answers [`LlmError::CircuitOpen`] without touching the inner model
//!   until a cooldown elapses (then probes half-open).
//!
//! # Example
//!
//! ```
//! use lcda_llm::middleware::{CircuitBreaker, FaultPlan, FaultyModel, RetryModel, SimClock, TimeoutModel};
//! use lcda_llm::persona::Persona;
//! use lcda_llm::sim::SimLlm;
//! use lcda_llm::design::DesignChoices;
//! use lcda_llm::prompt::PromptBuilder;
//! use lcda_llm::LanguageModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = SimClock::new();
//! let plan = FaultPlan::seeded(7, 100, 0.25, 2);
//! let faulty = FaultyModel::new(SimLlm::new(Persona::Pretrained, 42), plan, clock.clone());
//! let timed = TimeoutModel::new(faulty, clock.clone(), 30_000);
//! let mut model = CircuitBreaker::new(RetryModel::new(timed, clock.clone(), 7), clock);
//! let choices = DesignChoices::nacim_default();
//! let prompt = PromptBuilder::new(&choices).render(&[]);
//! let response = model.complete(&prompt)?;
//! assert!(response.contains("[["));
//! # Ok(())
//! # }
//! ```

use crate::obs::{LlmEvent, ObserverHandle};
use crate::{LanguageModel, LlmError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, simulated millisecond clock.
///
/// All middleware timing (backoff, latency spikes, circuit cooldowns)
/// advances this counter instead of sleeping, which keeps fault-injection
/// tests instant and deterministic. Handles are cheap to clone and share
/// one underlying counter.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    ms: Arc<AtomicU64>,
}

impl SimClock {
    /// A fresh clock at t = 0 ms.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }

    /// Advances the clock (the simulated analogue of sleeping).
    pub fn advance_ms(&self, delta: u64) {
        self.ms.fetch_add(delta, Ordering::SeqCst);
    }
}

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The endpoint answers 429: a transient [`LlmError::RateLimited`].
    RateLimit {
        /// Suggested wait carried in the error, milliseconds.
        retry_after_ms: u64,
    },
    /// The call hangs past its budget: a transient [`LlmError::Timeout`]
    /// that also advances the clock by `elapsed_ms`.
    Timeout {
        /// Simulated time burned by the hung call, milliseconds.
        elapsed_ms: u64,
    },
    /// The model replies with refusal prose instead of a design.
    Garbage,
    /// The response stream is cut off mid-list.
    Truncated,
    /// The call succeeds but takes `delay_ms` of simulated latency; the
    /// inner model *is* consulted.
    LatencySpike {
        /// Extra simulated latency, milliseconds.
        delay_ms: u64,
    },
}

/// A deterministic schedule mapping call indices to injected faults.
///
/// The schedule is the single source of truth for a fault scenario:
/// build it from an explicit script or from a seed, hand it to a fault
/// injector ([`FaultyModel`] for LLM calls, `FaultyBackend` in
/// `lcda-core` for hardware-cost calls), and the same faults fire at the
/// same call indices on every run. The fault vocabulary is a type
/// parameter so each substrate can define its own failure modes while
/// sharing the scheduling and burst-bounding machinery.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultSchedule<F> {
    faults: BTreeMap<u64, F>,
}

// Manual impl: `derive(Default)` would demand `F: Default`, which the
// fault enums deliberately are not (no fault is a sensible default).
impl<F> Default for FaultSchedule<F> {
    fn default() -> Self {
        FaultSchedule {
            faults: BTreeMap::new(),
        }
    }
}

impl<F> FaultSchedule<F> {
    /// The empty schedule: no faults, the wrapped substrate is transparent.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// A schedule from explicit `(call_index, fault)` entries.
    pub fn scripted(entries: impl IntoIterator<Item = (u64, F)>) -> Self {
        FaultSchedule {
            faults: entries.into_iter().collect(),
        }
    }

    /// A seeded random schedule over the first `horizon` calls with a
    /// caller-supplied fault sampler.
    ///
    /// Each call index independently faults with probability `rate`
    /// (clamped to `[0, 1]`), drawing the fault from `sample`. Faults
    /// for which `benign` returns true (the call still succeeds) reset
    /// the burst counter; at most `max_burst` *consecutive* call indices
    /// carry failing faults, so a resilient stack with a retry budget
    /// above `max_burst` always recovers — the property the
    /// determinism-under-faults tests rely on.
    pub fn seeded_with(
        seed: u64,
        horizon: u64,
        rate: f64,
        max_burst: u32,
        mut sample: impl FnMut(&mut StdRng) -> F,
        mut benign: impl FnMut(&F) -> bool,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rate = rate.clamp(0.0, 1.0);
        let mut faults = BTreeMap::new();
        let mut burst = 0u32;
        for call in 0..horizon {
            if burst < max_burst && rng.gen_bool(rate) {
                let fault = sample(&mut rng);
                if benign(&fault) {
                    burst = 0;
                } else {
                    burst += 1;
                }
                faults.insert(call, fault);
            } else {
                burst = 0;
            }
        }
        FaultSchedule { faults }
    }

    /// The fault scheduled at a call index, if any.
    pub fn fault_at(&self, call: u64) -> Option<&F> {
        self.faults.get(&call)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The LLM-side fault schedule: [`FaultSchedule`] over [`Fault`].
pub type FaultPlan = FaultSchedule<Fault>;

impl FaultSchedule<Fault> {
    /// A seeded random plan over the first `horizon` calls.
    ///
    /// Each call index independently faults with probability `rate`
    /// (clamped to `[0, 1]`), drawing the fault kind from a seeded RNG.
    /// At most `max_burst` *consecutive* call indices fault, so a
    /// resilient stack with a retry budget above `max_burst` always
    /// recovers. A latency spike still succeeds, so it does not extend
    /// a failure burst.
    pub fn seeded(seed: u64, horizon: u64, rate: f64, max_burst: u32) -> Self {
        FaultSchedule::seeded_with(
            seed,
            horizon,
            rate,
            max_burst,
            |rng| match rng.gen_range(0..5u32) {
                0 => Fault::RateLimit { retry_after_ms: 50 },
                1 => Fault::Timeout { elapsed_ms: 500 },
                2 => Fault::Garbage,
                3 => Fault::Truncated,
                _ => Fault::LatencySpike { delay_ms: 400 },
            },
            |fault| matches!(fault, Fault::LatencySpike { .. }),
        )
    }
}

/// Canned truncated response: a rollout list cut off mid-pair, as a
/// dropped connection would leave it.
const TRUNCATED_RESPONSE: &str = "[[32,3],[32";

/// Canned refusal response for [`Fault::Garbage`].
const GARBAGE_RESPONSE: &str = "I'm sorry, but I can't provide a rollout list right now.";

/// Deterministic fault injection around an inner model.
///
/// Faults *intercept* the call: except for [`Fault::LatencySpike`], the
/// inner model is not consulted on a faulted call, so its RNG stream (and
/// therefore every subsequent proposal) matches the fault-free run
/// exactly. This is what makes searches bit-identical under any in-budget
/// fault schedule.
#[derive(Debug)]
pub struct FaultyModel<M> {
    inner: M,
    plan: FaultPlan,
    clock: SimClock,
    calls: u64,
    observer: ObserverHandle,
}

impl<M> FaultyModel<M> {
    /// Wraps `inner` with a fault schedule on a shared clock.
    pub fn new(inner: M, plan: FaultPlan, clock: SimClock) -> Self {
        FaultyModel {
            inner,
            plan,
            clock,
            calls: 0,
            observer: ObserverHandle::none(),
        }
    }

    /// Installs an observer notified whenever a scheduled fault fires.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Total calls seen so far (faulted or not).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: LanguageModel> LanguageModel for FaultyModel<M> {
    fn complete(&mut self, prompt: &str) -> Result<String> {
        let call = self.calls;
        self.calls += 1;
        if let Some(fault) = self.plan.fault_at(call) {
            let kind = match fault {
                Fault::RateLimit { .. } => "rate_limit",
                Fault::Timeout { .. } => "timeout",
                Fault::Garbage => "garbage",
                Fault::Truncated => "truncated",
                Fault::LatencySpike { .. } => "latency_spike",
            };
            self.observer.emit(LlmEvent::Fault { call, kind });
        }
        match self.plan.fault_at(call) {
            Some(Fault::RateLimit { retry_after_ms }) => {
                self.clock.advance_ms(1);
                Err(LlmError::RateLimited {
                    retry_after_ms: *retry_after_ms,
                })
            }
            Some(Fault::Timeout { elapsed_ms }) => {
                self.clock.advance_ms(*elapsed_ms);
                Err(LlmError::Timeout {
                    elapsed_ms: *elapsed_ms,
                })
            }
            Some(Fault::Garbage) => Ok(GARBAGE_RESPONSE.to_string()),
            Some(Fault::Truncated) => Ok(TRUNCATED_RESPONSE.to_string()),
            Some(Fault::LatencySpike { delay_ms }) => {
                self.clock.advance_ms(*delay_ms);
                self.inner.complete(prompt)
            }
            None => self.inner.complete(prompt),
        }
    }

    fn model_name(&self) -> &str {
        self.inner.model_name()
    }
}

/// Converts calls that burned more simulated time than a budget into
/// [`LlmError::Timeout`], discarding the (too-late) response.
#[derive(Debug)]
pub struct TimeoutModel<M> {
    inner: M,
    clock: SimClock,
    budget_ms: u64,
}

impl<M> TimeoutModel<M> {
    /// Wraps `inner` with a per-call latency budget in milliseconds.
    pub fn new(inner: M, clock: SimClock, budget_ms: u64) -> Self {
        TimeoutModel {
            inner,
            clock,
            budget_ms,
        }
    }
}

impl<M: LanguageModel> LanguageModel for TimeoutModel<M> {
    fn complete(&mut self, prompt: &str) -> Result<String> {
        let start = self.clock.now_ms();
        let out = self.inner.complete(prompt);
        let elapsed = self.clock.now_ms().saturating_sub(start);
        if elapsed > self.budget_ms {
            return Err(LlmError::Timeout {
                elapsed_ms: elapsed,
            });
        }
        out
    }

    fn model_name(&self) -> &str {
        self.inner.model_name()
    }
}

/// Retries transient errors with seeded exponential backoff and jitter.
///
/// Backoff delays advance the shared [`SimClock`] instead of sleeping;
/// jitter draws from a private seeded RNG, so retry timing never perturbs
/// the wrapped model's own randomness. Non-transient errors (parse
/// failures, open circuits, bad prompts) pass straight through.
#[derive(Debug)]
pub struct RetryModel<M> {
    inner: M,
    clock: SimClock,
    max_attempts: u32,
    base_delay_ms: u64,
    max_delay_ms: u64,
    rng: StdRng,
    retries: u64,
    observer: ObserverHandle,
}

impl<M> RetryModel<M> {
    /// Wraps `inner` with the default budget: 4 attempts, 100 ms base
    /// delay doubling up to a 10 s cap.
    pub fn new(inner: M, clock: SimClock, seed: u64) -> Self {
        RetryModel {
            inner,
            clock,
            max_attempts: 4,
            base_delay_ms: 100,
            max_delay_ms: 10_000,
            rng: StdRng::seed_from_u64(seed ^ 0xB5F3_7A1E_4C9D_0286),
            retries: 0,
            observer: ObserverHandle::none(),
        }
    }

    /// Installs an observer notified before every retry.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Overrides the attempt budget (minimum 1).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the backoff base and cap, in milliseconds.
    pub fn backoff(mut self, base_ms: u64, cap_ms: u64) -> Self {
        self.base_delay_ms = base_ms.max(1);
        self.max_delay_ms = cap_ms.max(self.base_delay_ms);
        self
    }

    /// Total retries performed over the model's lifetime.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Backoff before retry number `attempt` (0-based), with jitter.
    fn delay_ms(&mut self, attempt: u32, floor_ms: u64) -> u64 {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_delay_ms);
        // Full jitter in [0, exp): spreads concurrent clients apart while
        // staying deterministic per seed.
        let jitter = self.rng.gen_range(0..exp.max(1));
        (exp + jitter).max(floor_ms).min(self.max_delay_ms * 2)
    }
}

impl<M: LanguageModel> LanguageModel for RetryModel<M> {
    fn complete(&mut self, prompt: &str) -> Result<String> {
        let mut attempt = 0u32;
        loop {
            match self.inner.complete(prompt) {
                Ok(response) => return Ok(response),
                Err(e) if e.is_transient() && attempt + 1 < self.max_attempts => {
                    let floor = match &e {
                        LlmError::RateLimited { retry_after_ms } => *retry_after_ms,
                        _ => 0,
                    };
                    let delay = self.delay_ms(attempt, floor);
                    self.observer.emit(LlmEvent::Retry {
                        attempt,
                        delay_ms: delay,
                    });
                    self.clock.advance_ms(delay);
                    self.retries += 1;
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn model_name(&self) -> &str {
        self.inner.model_name()
    }
}

/// Trips after a run of consecutive failures and fails fast with
/// [`LlmError::CircuitOpen`] until a cooldown elapses, then lets one
/// probe call through (half-open).
#[derive(Debug)]
pub struct CircuitBreaker<M> {
    inner: M,
    clock: SimClock,
    threshold: u32,
    cooldown_ms: u64,
    consecutive_failures: u32,
    opened_at_ms: Option<u64>,
    trips: u64,
    observer: ObserverHandle,
}

impl<M> CircuitBreaker<M> {
    /// Wraps `inner` with the default policy: open after 5 consecutive
    /// failures, probe again after 60 s of simulated time.
    pub fn new(inner: M, clock: SimClock) -> Self {
        CircuitBreaker {
            inner,
            clock,
            threshold: 5,
            cooldown_ms: 60_000,
            consecutive_failures: 0,
            opened_at_ms: None,
            trips: 0,
            observer: ObserverHandle::none(),
        }
    }

    /// Installs an observer notified on open/close transitions.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Overrides the consecutive-failure threshold (minimum 1).
    pub fn threshold(mut self, failures: u32) -> Self {
        self.threshold = failures.max(1);
        self
    }

    /// Overrides the cooldown before a half-open probe, milliseconds.
    pub fn cooldown_ms(mut self, cooldown_ms: u64) -> Self {
        self.cooldown_ms = cooldown_ms;
        self
    }

    /// Whether the circuit is currently open (cooldown not yet elapsed).
    pub fn is_open(&self) -> bool {
        match self.opened_at_ms {
            Some(t) => self.clock.now_ms().saturating_sub(t) < self.cooldown_ms,
            None => false,
        }
    }

    /// How many times the circuit has tripped over its lifetime.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

impl<M: LanguageModel> LanguageModel for CircuitBreaker<M> {
    fn complete(&mut self, prompt: &str) -> Result<String> {
        if self.is_open() {
            return Err(LlmError::CircuitOpen {
                failures: self.consecutive_failures,
            });
        }
        match self.inner.complete(prompt) {
            Ok(response) => {
                self.consecutive_failures = 0;
                if self.opened_at_ms.take().is_some() {
                    // A half-open probe succeeded: the circuit closes.
                    self.observer.emit(LlmEvent::CircuitClosed);
                }
                Ok(response)
            }
            Err(e) => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                if self.consecutive_failures >= self.threshold {
                    // Open (or re-open after a failed half-open probe).
                    if self.opened_at_ms.is_none() {
                        self.trips += 1;
                    }
                    self.opened_at_ms = Some(self.clock.now_ms());
                    self.observer.emit(LlmEvent::CircuitOpened {
                        failures: self.consecutive_failures,
                    });
                }
                Err(e)
            }
        }
    }

    fn model_name(&self) -> &str {
        self.inner.model_name()
    }
}

/// The standard resilient stack:
/// breaker(retry(timeout(faulty(inner)))) with the default budgets.
///
/// `seed` feeds only the retry jitter; pass the run's master seed so the
/// whole search stays reproducible. A [`FaultPlan::none`] plan makes the
/// stack fully transparent.
pub fn resilient<M: LanguageModel>(
    inner: M,
    plan: FaultPlan,
    clock: SimClock,
    seed: u64,
) -> CircuitBreaker<RetryModel<TimeoutModel<FaultyModel<M>>>> {
    resilient_observed(inner, plan, clock, seed, ObserverHandle::none())
}

/// [`resilient`] with an [`ObserverHandle`] installed at every layer, so
/// faults, retries, and breaker transitions stream to the observer.
pub fn resilient_observed<M: LanguageModel>(
    inner: M,
    plan: FaultPlan,
    clock: SimClock,
    seed: u64,
    observer: ObserverHandle,
) -> CircuitBreaker<RetryModel<TimeoutModel<FaultyModel<M>>>> {
    let faulty = FaultyModel::new(inner, plan, clock.clone()).with_observer(observer.clone());
    let timed = TimeoutModel::new(faulty, clock.clone(), 30_000);
    let retry = RetryModel::new(timed, clock.clone(), seed).with_observer(observer.clone());
    CircuitBreaker::new(retry, clock).with_observer(observer)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that always succeeds with a fixed reply.
    struct Echo;
    impl LanguageModel for Echo {
        fn complete(&mut self, _prompt: &str) -> Result<String> {
            Ok("[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]".into())
        }
        fn model_name(&self) -> &str {
            "echo"
        }
    }

    /// A model that always fails transiently.
    struct Dark;
    impl LanguageModel for Dark {
        fn complete(&mut self, _prompt: &str) -> Result<String> {
            Err(LlmError::RateLimited { retry_after_ms: 10 })
        }
        fn model_name(&self) -> &str {
            "dark"
        }
    }

    #[test]
    fn clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(250);
        let c2 = c.clone();
        c2.advance_ms(50);
        assert_eq!(c.now_ms(), 300);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(11, 300, 0.5, 2);
        let b = FaultPlan::seeded(11, 300, 0.5, 2);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(12, 300, 0.5, 2);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        // No more than 2 consecutive *failing* faults anywhere.
        let mut burst = 0u32;
        for call in 0..300 {
            match a.fault_at(call) {
                Some(Fault::LatencySpike { .. }) | None => burst = 0,
                Some(_) => {
                    burst += 1;
                    assert!(burst <= 2, "burst of {burst} at call {call}");
                }
            }
        }
    }

    #[test]
    fn faulty_model_injects_per_schedule() {
        let clock = SimClock::new();
        let plan = FaultPlan::scripted([
            (0, Fault::RateLimit { retry_after_ms: 5 }),
            (1, Fault::Garbage),
            (2, Fault::Truncated),
            (3, Fault::Timeout { elapsed_ms: 700 }),
        ]);
        let mut m = FaultyModel::new(Echo, plan, clock.clone());
        assert!(matches!(
            m.complete("p"),
            Err(LlmError::RateLimited { retry_after_ms: 5 })
        ));
        assert_eq!(m.complete("p").unwrap(), GARBAGE_RESPONSE);
        assert_eq!(m.complete("p").unwrap(), TRUNCATED_RESPONSE);
        assert!(matches!(m.complete("p"), Err(LlmError::Timeout { .. })));
        assert!(clock.now_ms() >= 700);
        // Past the schedule the model is transparent.
        assert!(m.complete("p").unwrap().contains("[["));
        assert_eq!(m.calls(), 5);
        assert_eq!(m.model_name(), "echo");
    }

    #[test]
    fn timeout_model_converts_slow_calls() {
        let clock = SimClock::new();
        let plan = FaultPlan::scripted([(0, Fault::LatencySpike { delay_ms: 5_000 })]);
        let slow = FaultyModel::new(Echo, plan, clock.clone());
        let mut m = TimeoutModel::new(slow, clock.clone(), 1_000);
        assert!(matches!(
            m.complete("p"),
            Err(LlmError::Timeout { elapsed_ms: 5_000 })
        ));
        // Fast calls pass.
        assert!(m.complete("p").is_ok());
    }

    #[test]
    fn retry_model_recovers_from_transient_burst() {
        let clock = SimClock::new();
        let plan = FaultPlan::scripted([
            (0, Fault::RateLimit { retry_after_ms: 20 }),
            (1, Fault::Timeout { elapsed_ms: 300 }),
        ]);
        let faulty = FaultyModel::new(Echo, plan, clock.clone());
        let mut m = RetryModel::new(faulty, clock.clone(), 1);
        let r = m.complete("p").unwrap();
        assert!(r.contains("[["));
        assert_eq!(m.retries(), 2);
        // Backoff advanced the simulated clock, not the wall clock.
        assert!(clock.now_ms() >= 300);
    }

    #[test]
    fn retry_model_gives_up_within_budget() {
        let clock = SimClock::new();
        let mut m = RetryModel::new(Dark, clock, 2).max_attempts(3);
        assert!(matches!(m.complete("p"), Err(LlmError::RateLimited { .. })));
        assert_eq!(m.retries(), 2);
    }

    #[test]
    fn retry_model_backoff_is_deterministic() {
        let run = || {
            let clock = SimClock::new();
            let mut m = RetryModel::new(Dark, clock.clone(), 9).max_attempts(4);
            let _ = m.complete("p");
            clock.now_ms()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retry_model_passes_non_transient_through() {
        let clock = SimClock::new();
        struct Bad;
        impl LanguageModel for Bad {
            fn complete(&mut self, _p: &str) -> Result<String> {
                Err(LlmError::UnintelligiblePrompt("nope".into()))
            }
            fn model_name(&self) -> &str {
                "bad"
            }
        }
        let mut m = RetryModel::new(Bad, clock, 0);
        assert!(matches!(
            m.complete("p"),
            Err(LlmError::UnintelligiblePrompt(_))
        ));
        assert_eq!(m.retries(), 0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_cools_down() {
        let clock = SimClock::new();
        let mut m = CircuitBreaker::new(Dark, clock.clone())
            .threshold(3)
            .cooldown_ms(1_000);
        for _ in 0..3 {
            assert!(matches!(m.complete("p"), Err(LlmError::RateLimited { .. })));
        }
        assert!(m.is_open());
        assert_eq!(m.trips(), 1);
        // While open: fail fast with the typed error, inner untouched.
        assert!(matches!(
            m.complete("p"),
            Err(LlmError::CircuitOpen { failures: 3 })
        ));
        // After the cooldown a probe goes through (and fails again here).
        clock.advance_ms(1_000);
        assert!(matches!(m.complete("p"), Err(LlmError::RateLimited { .. })));
        assert!(m.is_open());
    }

    #[test]
    fn breaker_recovers_on_success() {
        let clock = SimClock::new();
        let plan = FaultPlan::scripted([
            (0, Fault::RateLimit { retry_after_ms: 1 }),
            (1, Fault::RateLimit { retry_after_ms: 1 }),
        ]);
        let faulty = FaultyModel::new(Echo, plan, clock.clone());
        let mut m = CircuitBreaker::new(faulty, clock.clone())
            .threshold(2)
            .cooldown_ms(100);
        let _ = m.complete("p");
        let _ = m.complete("p");
        assert!(m.is_open());
        clock.advance_ms(100);
        // Probe succeeds: circuit closes fully.
        assert!(m.complete("p").is_ok());
        assert!(!m.is_open());
        assert!(m.complete("p").is_ok());
    }

    #[test]
    fn observed_stack_streams_fault_retry_and_breaker_events() {
        use crate::obs::LlmObserver;
        use std::sync::Mutex;

        struct Tap(Arc<Mutex<Vec<LlmEvent>>>);
        impl LlmObserver for Tap {
            fn record(&mut self, event: &LlmEvent) {
                self.0.lock().unwrap().push(event.clone());
            }
        }

        let log = Arc::new(Mutex::new(Vec::new()));
        let clock = SimClock::new();
        let plan = FaultPlan::scripted([
            (0, Fault::RateLimit { retry_after_ms: 5 }),
            (1, Fault::Timeout { elapsed_ms: 100 }),
        ]);
        let observer = ObserverHandle::new(Box::new(Tap(log.clone())));
        let mut m = resilient_observed(Echo, plan, clock, 3, observer);
        assert!(m.complete("p").unwrap().contains("[["));
        let events = log.lock().unwrap();
        let faults = events
            .iter()
            .filter(|e| matches!(e, LlmEvent::Fault { .. }))
            .count();
        let retries = events
            .iter()
            .filter(|e| matches!(e, LlmEvent::Retry { .. }))
            .count();
        assert_eq!(faults, 2);
        assert_eq!(retries, 2);
        assert!(!events
            .iter()
            .any(|e| matches!(e, LlmEvent::CircuitOpened { .. })));
    }

    #[test]
    fn resilient_stack_is_transparent_without_faults() {
        let clock = SimClock::new();
        let mut m = resilient(Echo, FaultPlan::none(), clock, 3);
        assert_eq!(m.model_name(), "echo");
        assert!(m.complete("p").unwrap().contains("[["));
    }
}
