//! Conversation transcripts.
//!
//! Every LCDA episode exchanges one prompt and one response with the
//! model. Recording the exchange gives the paper's "explainable NAS"
//! property a concrete artifact: the transcript is human-readable and can
//! be serialized alongside the experiment results.

use serde::{Deserialize, Serialize};

/// One prompt/response exchange.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exchange {
    /// Episode index this exchange belongs to.
    pub episode: u32,
    /// The rendered prompt sent to the model.
    pub prompt: String,
    /// The model's raw response text (empty when the call itself failed
    /// before producing any text).
    pub response: String,
    /// Optional model-provided rationale for the proposal.
    pub rationale: Option<String>,
    /// Why the exchange failed, when it did — a parse-error or
    /// model-error note. `None` marks a successful exchange. Failed
    /// exchanges stay in the transcript so audits can see every attempt,
    /// not just the ones that parsed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

/// An ordered record of every exchange with a model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChatTranscript {
    model: String,
    exchanges: Vec<Exchange>,
}

impl ChatTranscript {
    /// Creates an empty transcript for a named model.
    pub fn new(model: impl Into<String>) -> Self {
        ChatTranscript {
            model: model.into(),
            exchanges: Vec::new(),
        }
    }

    /// The model name this transcript records.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Appends an exchange.
    pub fn record(
        &mut self,
        episode: u32,
        prompt: impl Into<String>,
        response: impl Into<String>,
        rationale: Option<String>,
    ) {
        self.exchanges.push(Exchange {
            episode,
            prompt: prompt.into(),
            response: response.into(),
            rationale,
            error: None,
        });
    }

    /// Appends a *failed* exchange with its error note.
    ///
    /// `response` is whatever text the model produced before the failure
    /// (empty when the call errored outright).
    pub fn record_failed(
        &mut self,
        episode: u32,
        prompt: impl Into<String>,
        response: impl Into<String>,
        error: impl Into<String>,
    ) {
        self.exchanges.push(Exchange {
            episode,
            prompt: prompt.into(),
            response: response.into(),
            rationale: None,
            error: Some(error.into()),
        });
    }

    /// All exchanges in order.
    pub fn exchanges(&self) -> &[Exchange] {
        &self.exchanges
    }

    /// Only the failed exchanges, in order.
    pub fn failures(&self) -> impl Iterator<Item = &Exchange> {
        self.exchanges.iter().filter(|e| e.error.is_some())
    }

    /// Number of exchanges (== episodes spoken to the model).
    pub fn len(&self) -> usize {
        self.exchanges.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.exchanges.is_empty()
    }

    /// Approximate prompt-token count across the whole transcript,
    /// using the standard ~4 characters/token heuristic. Useful for
    /// reporting search cost in LLM-API terms.
    pub fn approx_prompt_tokens(&self) -> u64 {
        self.exchanges
            .iter()
            .map(|e| e.prompt.len() as u64 / 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut t = ChatTranscript::new("sim-llm/pretrained");
        assert!(t.is_empty());
        t.record(0, "p0", "r0", None);
        t.record(1, "p1", "r1", Some("because".into()));
        assert_eq!(t.len(), 2);
        assert_eq!(t.exchanges()[1].rationale.as_deref(), Some("because"));
        assert_eq!(t.model(), "sim-llm/pretrained");
    }

    #[test]
    fn token_estimate() {
        let mut t = ChatTranscript::new("m");
        t.record(0, "x".repeat(400), "y", None);
        assert_eq!(t.approx_prompt_tokens(), 100);
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = ChatTranscript::new("m");
        t.record(0, "p", "r", Some("why".into()));
        t.record_failed(1, "p1", "garbage", "cannot parse llm response");
        let json = serde_json::to_string(&t).unwrap();
        let back: ChatTranscript = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn failed_exchanges_are_kept_and_filterable() {
        let mut t = ChatTranscript::new("m");
        t.record_failed(0, "p", "???", "no brackets");
        t.record(0, "p", "[[32,3]]", None);
        assert_eq!(t.len(), 2);
        let fails: Vec<_> = t.failures().collect();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].error.as_deref(), Some("no brackets"));
        assert!(t.exchanges()[1].error.is_none());
    }

    #[test]
    fn legacy_transcripts_deserialize_without_error_field() {
        let json = r#"{"model":"m","exchanges":[{"episode":0,"prompt":"p","response":"r","rationale":null}]}"#;
        let t: ChatTranscript = serde_json::from_str(json).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.exchanges()[0].error.is_none());
    }
}
