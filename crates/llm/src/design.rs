//! The design vocabulary shared by the prompt, the parser, the optimizers
//! and the co-design loop.
//!
//! A *design choices* value describes the NACIM search space (§IV): six
//! convolution stages each picking `(out_channels, kernel)`, plus the
//! hardware hyper-parameters (crossbar size, ADC resolution, cell
//! precision, device technology). A *candidate design* is one point of
//! that space. Candidates also admit a flat index encoding
//! ([`DesignChoices::encode`] / [`DesignChoices::decode`]) which is what
//! the RL and genetic optimizers manipulate.

use crate::{LlmError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The searchable design space (the `Choices` input of Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignChoices {
    /// Options for each conv stage's output channels.
    pub channel_options: Vec<u32>,
    /// Options for each conv stage's kernel size.
    pub kernel_options: Vec<u32>,
    /// Number of convolution stages (6 in the paper).
    pub num_conv_layers: usize,
    /// Crossbar size options (square arrays).
    pub xbar_options: Vec<u32>,
    /// ADC resolution options, bits.
    pub adc_options: Vec<u8>,
    /// Cell precision options, bits per device.
    pub cell_options: Vec<u8>,
    /// Device technology options (names as in
    /// `lcda_neurosim::device::DeviceTech::name`).
    pub tech_options: Vec<String>,
}

impl DesignChoices {
    /// The NACIM search space used throughout the paper's evaluation.
    pub fn nacim_default() -> Self {
        DesignChoices {
            channel_options: vec![16, 24, 32, 48, 64, 96, 128],
            kernel_options: vec![1, 3, 5, 7],
            num_conv_layers: 6,
            xbar_options: vec![64, 128, 256],
            adc_options: vec![4, 6, 8],
            cell_options: vec![1, 2, 4],
            tech_options: vec!["rram".to_string(), "fefet".to_string()],
        }
    }

    /// A deliberately tiny space for fast tests.
    pub fn tiny_test() -> Self {
        DesignChoices {
            channel_options: vec![4, 8],
            kernel_options: vec![1, 3],
            num_conv_layers: 2,
            xbar_options: vec![64],
            adc_options: vec![4],
            cell_options: vec![2],
            tech_options: vec!["rram".to_string()],
        }
    }

    /// Validates non-emptiness of every option list.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidChoices`] when any option list is empty.
    pub fn validate(&self) -> Result<()> {
        if self.num_conv_layers == 0 {
            return Err(LlmError::InvalidChoices("zero conv layers".into()));
        }
        for (name, len) in [
            ("channel_options", self.channel_options.len()),
            ("kernel_options", self.kernel_options.len()),
            ("xbar_options", self.xbar_options.len()),
            ("adc_options", self.adc_options.len()),
            ("cell_options", self.cell_options.len()),
            ("tech_options", self.tech_options.len()),
        ] {
            if len == 0 {
                return Err(LlmError::InvalidChoices(format!("{name} is empty")));
            }
        }
        Ok(())
    }

    /// Number of decision slots in the flat index encoding:
    /// `2 · layers + 4` (channels and kernel per layer, then crossbar,
    /// ADC, cell, technology).
    pub fn slot_count(&self) -> usize {
        2 * self.num_conv_layers + 4
    }

    /// Number of options available in decision slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot >= slot_count()`.
    pub fn slot_options(&self, slot: usize) -> usize {
        let n = self.num_conv_layers;
        match slot {
            s if s < 2 * n => {
                if s % 2 == 0 {
                    self.channel_options.len()
                } else {
                    self.kernel_options.len()
                }
            }
            s if s == 2 * n => self.xbar_options.len(),
            s if s == 2 * n + 1 => self.adc_options.len(),
            s if s == 2 * n + 2 => self.cell_options.len(),
            s if s == 2 * n + 3 => self.tech_options.len(),
            s => panic!("slot {s} out of range {}", self.slot_count()),
        }
    }

    /// Total number of designs in the space.
    pub fn space_size(&self) -> u128 {
        let mut total = 1u128;
        for slot in 0..self.slot_count() {
            total *= self.slot_options(slot) as u128;
        }
        total
    }

    /// Decodes a flat index vector into a candidate design.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::OutOfSpace`] for wrong length or out-of-range
    /// indices.
    pub fn decode(&self, indices: &[usize]) -> Result<CandidateDesign> {
        if indices.len() != self.slot_count() {
            return Err(LlmError::OutOfSpace(format!(
                "expected {} indices, got {}",
                self.slot_count(),
                indices.len()
            )));
        }
        for (slot, &i) in indices.iter().enumerate() {
            if i >= self.slot_options(slot) {
                return Err(LlmError::OutOfSpace(format!(
                    "slot {slot} index {i} out of {}",
                    self.slot_options(slot)
                )));
            }
        }
        let n = self.num_conv_layers;
        let conv = (0..n)
            .map(|l| ConvChoice {
                channels: self.channel_options[indices[2 * l]],
                kernel: self.kernel_options[indices[2 * l + 1]],
            })
            .collect();
        Ok(CandidateDesign {
            conv,
            hw: HwChoice {
                xbar_size: self.xbar_options[indices[2 * n]],
                adc_bits: self.adc_options[indices[2 * n + 1]],
                cell_bits: self.cell_options[indices[2 * n + 2]],
                tech: self.tech_options[indices[2 * n + 3]].clone(),
            },
        })
    }

    /// Encodes a candidate design back into flat indices.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::OutOfSpace`] when the design uses options not
    /// present in this space.
    pub fn encode(&self, design: &CandidateDesign) -> Result<Vec<usize>> {
        if design.conv.len() != self.num_conv_layers {
            return Err(LlmError::OutOfSpace(format!(
                "design has {} conv layers, space has {}",
                design.conv.len(),
                self.num_conv_layers
            )));
        }
        let find = |options: &[u32], v: u32, what: &str| -> Result<usize> {
            options
                .iter()
                .position(|&o| o == v)
                .ok_or_else(|| LlmError::OutOfSpace(format!("{what} {v} not in {options:?}")))
        };
        let mut out = Vec::with_capacity(self.slot_count());
        for c in &design.conv {
            out.push(find(&self.channel_options, c.channels, "channels")?);
            out.push(find(&self.kernel_options, c.kernel, "kernel")?);
        }
        out.push(find(&self.xbar_options, design.hw.xbar_size, "xbar")?);
        out.push(
            self.adc_options
                .iter()
                .position(|&o| o == design.hw.adc_bits)
                .ok_or_else(|| {
                    LlmError::OutOfSpace(format!("adc {} not available", design.hw.adc_bits))
                })?,
        );
        out.push(
            self.cell_options
                .iter()
                .position(|&o| o == design.hw.cell_bits)
                .ok_or_else(|| {
                    LlmError::OutOfSpace(format!("cell {} not available", design.hw.cell_bits))
                })?,
        );
        out.push(
            self.tech_options
                .iter()
                .position(|o| o == &design.hw.tech)
                .ok_or_else(|| {
                    LlmError::OutOfSpace(format!("tech {} not available", design.hw.tech))
                })?,
        );
        Ok(out)
    }

    /// Checks that a design lies in this space.
    ///
    /// # Errors
    ///
    /// Same as [`DesignChoices::encode`].
    pub fn contains(&self, design: &CandidateDesign) -> Result<()> {
        self.encode(design).map(|_| ())
    }
}

impl Default for DesignChoices {
    fn default() -> Self {
        DesignChoices::nacim_default()
    }
}

/// One convolution stage's searched pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvChoice {
    /// Output channels.
    pub channels: u32,
    /// Square kernel side.
    pub kernel: u32,
}

/// The hardware half of a candidate design.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HwChoice {
    /// Crossbar rows = columns.
    pub xbar_size: u32,
    /// ADC resolution, bits.
    pub adc_bits: u8,
    /// Cell precision, bits per device.
    pub cell_bits: u8,
    /// Device technology name.
    pub tech: String,
}

/// A full candidate design: the DNN rollout plus hardware
/// hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CandidateDesign {
    /// Per-stage `(channels, kernel)` choices.
    pub conv: Vec<ConvChoice>,
    /// Hardware hyper-parameters.
    pub hw: HwChoice,
}

impl CandidateDesign {
    /// The paper's reference rollout on default hardware.
    pub fn reference() -> Self {
        CandidateDesign {
            conv: [(32, 3), (32, 3), (64, 3), (64, 3), (128, 3), (128, 3)]
                .iter()
                .map(|&(c, k)| ConvChoice {
                    channels: c,
                    kernel: k,
                })
                .collect(),
            hw: HwChoice {
                xbar_size: 128,
                adc_bits: 8,
                cell_bits: 2,
                tech: "rram".to_string(),
            },
        }
    }

    /// Renders the design in the paper's response format:
    /// `[[32,3],[32,3],…] | hw: [128,8,2,rram]`.
    pub fn to_response_text(&self) -> String {
        let pairs: Vec<String> = self
            .conv
            .iter()
            .map(|c| format!("[{},{}]", c.channels, c.kernel))
            .collect();
        format!(
            "[{}] | hw: [{},{},{},{}]",
            pairs.join(","),
            self.hw.xbar_size,
            self.hw.adc_bits,
            self.hw.cell_bits,
            self.hw.tech
        )
    }
}

impl fmt::Display for CandidateDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_response_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nacim_space_size() {
        let c = DesignChoices::nacim_default();
        c.validate().unwrap();
        assert_eq!(c.slot_count(), 16);
        // (7·4)^6 · 3 · 3 · 3 · 2
        let expected = 28u128.pow(6) * 54;
        assert_eq!(c.space_size(), expected);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = DesignChoices::nacim_default();
        let d = CandidateDesign::reference();
        let idx = c.encode(&d).unwrap();
        let back = c.decode(&idx).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn decode_validates() {
        let c = DesignChoices::tiny_test();
        assert!(c.decode(&[0; 3]).is_err()); // wrong length
        let mut idx = vec![0usize; c.slot_count()];
        idx[0] = 99;
        assert!(c.decode(&idx).is_err());
    }

    #[test]
    fn encode_rejects_foreign_options() {
        let c = DesignChoices::tiny_test();
        let mut d = c.decode(&vec![0; c.slot_count()]).unwrap();
        d.conv[0].channels = 999;
        assert!(c.encode(&d).is_err());
        assert!(c.contains(&d).is_err());
    }

    #[test]
    fn empty_options_rejected() {
        let mut c = DesignChoices::nacim_default();
        c.kernel_options.clear();
        assert!(c.validate().is_err());
        let mut c = DesignChoices::nacim_default();
        c.num_conv_layers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn response_text_format() {
        let d = CandidateDesign::reference();
        let s = d.to_response_text();
        assert!(s.starts_with("[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]"));
        assert!(s.contains("hw: [128,8,2,rram]"));
        assert_eq!(format!("{d}"), s);
    }

    #[test]
    fn slot_options_layout() {
        let c = DesignChoices::nacim_default();
        assert_eq!(c.slot_options(0), 7); // channels
        assert_eq!(c.slot_options(1), 4); // kernel
        assert_eq!(c.slot_options(12), 3); // xbar
        assert_eq!(c.slot_options(13), 3); // adc
        assert_eq!(c.slot_options(14), 3); // cell
        assert_eq!(c.slot_options(15), 2); // tech
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range_panics() {
        DesignChoices::nacim_default().slot_options(16);
    }

    #[test]
    fn serde_roundtrip() {
        let d = CandidateDesign::reference();
        let json = serde_json::to_string(&d).unwrap();
        let back: CandidateDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
