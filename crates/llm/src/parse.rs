//! Parsing LLM response text into candidate designs.
//!
//! The design generator "parses GPT-4 outputs" (§III-B, following GENIUS).
//! Real model output is messy — surrounding prose, whitespace, trailing
//! punctuation — so the parser scans for the first well-formed rollout
//! list instead of demanding an exact format, then validates every value
//! against the design space.

use crate::design::{CandidateDesign, ConvChoice, DesignChoices, HwChoice};
use crate::{LlmError, Result};

fn snippet(text: &str) -> String {
    text.chars().take(48).collect()
}

/// Extracts the first balanced `[[…],[…]]` list of integer pairs from
/// free-form text.
fn extract_pairs(text: &str) -> Result<(Vec<(u32, u32)>, usize)> {
    let bytes = text.as_bytes();
    let start = text.find("[[").ok_or_else(|| LlmError::ParseResponse {
        reason: "no rollout list found".into(),
        snippet: snippet(text),
    })?;
    let mut depth = 0usize;
    let mut end = None;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| LlmError::ParseResponse {
                        reason: "unbalanced brackets".into(),
                        snippet: snippet(&text[start..]),
                    })?;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let end = end.ok_or_else(|| LlmError::ParseResponse {
        reason: "unterminated rollout list".into(),
        snippet: snippet(&text[start..]),
    })?;
    let inner = &text[start + 1..end];
    let mut pairs = Vec::new();
    let mut rest = inner;
    while let Some(open) = rest.find('[') {
        let close =
            rest[open..]
                .find(']')
                .map(|c| open + c)
                .ok_or_else(|| LlmError::ParseResponse {
                    reason: "unterminated pair".into(),
                    snippet: snippet(rest),
                })?;
        let body = &rest[open + 1..close];
        let nums: Vec<&str> = body.split(',').map(str::trim).collect();
        if nums.len() != 2 {
            return Err(LlmError::ParseResponse {
                reason: format!("pair has {} elements", nums.len()),
                snippet: snippet(body),
            });
        }
        let parse_num = |s: &str| -> Result<u32> {
            s.parse::<u32>().map_err(|_| LlmError::ParseResponse {
                reason: format!("`{s}` is not a number"),
                snippet: snippet(body),
            })
        };
        pairs.push((parse_num(nums[0])?, parse_num(nums[1])?));
        rest = &rest[close + 1..];
    }
    if pairs.is_empty() {
        return Err(LlmError::ParseResponse {
            reason: "empty rollout list".into(),
            snippet: snippet(inner),
        });
    }
    Ok((pairs, end))
}

/// Extracts the `hw: [xbar, adc, cell, tech]` suffix if present.
fn extract_hw(text: &str) -> Result<Option<HwChoice>> {
    let Some(pos) = text.find("hw:") else {
        return Ok(None);
    };
    let after = &text[pos + 3..];
    let open = after.find('[').ok_or_else(|| LlmError::ParseResponse {
        reason: "hw section without bracket".into(),
        snippet: snippet(after),
    })?;
    let close =
        after[open..]
            .find(']')
            .map(|c| open + c)
            .ok_or_else(|| LlmError::ParseResponse {
                reason: "unterminated hw section".into(),
                snippet: snippet(after),
            })?;
    let parts: Vec<&str> = after[open + 1..close].split(',').map(str::trim).collect();
    if parts.len() != 4 {
        return Err(LlmError::ParseResponse {
            reason: format!("hw section has {} fields, expected 4", parts.len()),
            snippet: snippet(&after[open..close]),
        });
    }
    let num = |s: &str| -> Result<u32> {
        s.parse::<u32>().map_err(|_| LlmError::ParseResponse {
            reason: format!("`{s}` is not a number"),
            snippet: snippet(s),
        })
    };
    Ok(Some(HwChoice {
        xbar_size: num(parts[0])?,
        adc_bits: num(parts[1])? as u8,
        cell_bits: num(parts[2])? as u8,
        tech: parts[3].to_ascii_lowercase(),
    }))
}

/// Parses a response into a design, validating against the space.
///
/// Missing hardware sections fall back to the mid-point hardware choice
/// (the paper's prompt only mandates the rollout pairs).
///
/// # Errors
///
/// Returns [`LlmError::ParseResponse`] for malformed text and
/// [`LlmError::OutOfSpace`] when values are not in the design space.
pub fn parse_design(text: &str, choices: &DesignChoices) -> Result<CandidateDesign> {
    choices.validate()?;
    let (pairs, _) = extract_pairs(text)?;
    if pairs.len() != choices.num_conv_layers {
        return Err(LlmError::ParseResponse {
            reason: format!(
                "expected {} pairs, got {}",
                choices.num_conv_layers,
                pairs.len()
            ),
            snippet: snippet(text),
        });
    }
    let conv: Vec<ConvChoice> = pairs
        .into_iter()
        .map(|(channels, kernel)| ConvChoice { channels, kernel })
        .collect();
    let hw = match extract_hw(text)? {
        Some(hw) => hw,
        None => HwChoice {
            xbar_size: choices.xbar_options[choices.xbar_options.len() / 2],
            adc_bits: choices.adc_options[choices.adc_options.len() / 2],
            cell_bits: choices.cell_options[choices.cell_options.len() / 2],
            tech: choices.tech_options[0].clone(),
        },
    };
    let design = CandidateDesign { conv, hw };
    choices.contains(&design)?;
    Ok(design)
}

/// Parses the history lines back out of a rendered prompt — used by the
/// simulated LLM, which (like GPT-4) only ever sees text.
///
/// Lines look like `design [[32,3],…] | hw: [128,8,2,rram] -> perf: 0.51`.
/// Unparseable lines are skipped, mirroring how a language model glosses
/// over noise.
pub fn parse_history(prompt: &str, choices: &DesignChoices) -> Vec<(CandidateDesign, f64)> {
    let mut out = Vec::new();
    for line in prompt.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix(crate::prompt::HISTORY_LINE_PREFIX) else {
            continue;
        };
        let Some(arrow) = rest.rfind("-> perf:") else {
            continue;
        };
        let (design_text, perf_text) = rest.split_at(arrow);
        let Ok(design) = parse_design(design_text, choices) else {
            continue;
        };
        let Ok(perf) = perf_text
            .trim_start_matches("-> perf:")
            .trim()
            .parse::<f64>()
        else {
            continue;
        };
        out.push((design, perf));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{HistoryEntry, PromptBuilder};

    fn space() -> DesignChoices {
        DesignChoices::nacim_default()
    }

    #[test]
    fn parses_clean_response() {
        let d = parse_design(
            "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] | hw: [128,8,2,rram]",
            &space(),
        )
        .unwrap();
        assert_eq!(d, CandidateDesign::reference());
    }

    #[test]
    fn parses_response_with_prose() {
        let text = "Sure! Based on the results, I suggest:\n\n  \
                    [[16, 3], [24, 3], [32, 5], [48, 3], [64, 3], [96, 3]] \
                    with hw: [256, 6, 2, fefet]. This should improve accuracy.";
        let d = parse_design(text, &space()).unwrap();
        assert_eq!(d.conv[2].kernel, 5);
        assert_eq!(d.hw.xbar_size, 256);
        assert_eq!(d.hw.tech, "fefet");
    }

    #[test]
    fn missing_hw_defaults_to_midpoint() {
        let d = parse_design("[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]]", &space()).unwrap();
        assert_eq!(d.hw.xbar_size, 128);
        assert_eq!(d.hw.adc_bits, 6);
        assert_eq!(d.hw.tech, "rram");
    }

    #[test]
    fn rejects_wrong_pair_count() {
        assert!(parse_design("[[32,3],[32,3]]", &space()).is_err());
    }

    #[test]
    fn rejects_out_of_space_values() {
        // 300 channels not in the space.
        let e = parse_design("[[300,3],[32,3],[64,3],[64,3],[128,3],[128,3]]", &space());
        assert!(matches!(e, Err(LlmError::OutOfSpace(_))));
        // kernel 9 not in the space.
        let e = parse_design("[[32,9],[32,3],[64,3],[64,3],[128,3],[128,3]]", &space());
        assert!(matches!(e, Err(LlmError::OutOfSpace(_))));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_design("no list here", &space()).is_err());
        assert!(parse_design("[[32,3", &space()).is_err());
        assert!(parse_design("[[a,b],[32,3],[64,3],[64,3],[128,3],[128,3]]", &space()).is_err());
        assert!(parse_design("[]", &space()).is_err());
        assert!(parse_design("[[1,2,3],[32,3],[64,3],[64,3],[128,3],[128,3]]", &space()).is_err());
    }

    #[test]
    fn rejects_bad_hw() {
        let e = parse_design(
            "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] hw: [128,8]",
            &space(),
        );
        assert!(e.is_err());
        let e = parse_design(
            "[[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] hw: [999,8,2,rram]",
            &space(),
        );
        assert!(matches!(e, Err(LlmError::OutOfSpace(_))));
    }

    #[test]
    fn history_roundtrips_through_prompt() {
        let choices = space();
        let history = vec![
            HistoryEntry {
                design: CandidateDesign::reference(),
                performance: 0.42,
            },
            HistoryEntry {
                design: CandidateDesign::reference(),
                performance: -1.0,
            },
        ];
        let prompt = PromptBuilder::new(&choices).render(&history);
        let parsed = parse_history(&prompt, &choices);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, CandidateDesign::reference());
        assert!((parsed[0].1 - 0.42).abs() < 1e-9);
        assert_eq!(parsed[1].1, -1.0);
    }

    #[test]
    fn history_skips_noise_lines() {
        let choices = space();
        let text = "design gibberish -> perf: 0.5\n\
                    design [[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] | hw: [128,8,2,rram] -> perf: 0.7\n\
                    design [[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] | hw: [128,8,2,rram] -> perf: xyz\n";
        let parsed = parse_history(text, &choices);
        assert_eq!(parsed.len(), 1);
        assert!((parsed[0].1 - 0.7).abs() < 1e-9);
    }
}
