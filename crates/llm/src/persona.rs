//! Personas and the explicit knowledge base of the simulated LLM.
//!
//! The paper characterizes GPT-4's co-design behaviour precisely enough to
//! encode it as rules (§IV-A, §IV-B). Each [`Heuristic`] carries a prose
//! statement (what the model "believes"), whether the belief is actually
//! correct on CiM hardware, and the scoring/constraint behaviour it
//! induces. Three personas select rule sets:
//!
//! - [`Persona::Pretrained`] — GPT-4 as observed in the paper: sound
//!   channel heuristics plus **both kernel-size misconceptions**. Strong
//!   on the accuracy-energy objective (Fig. 2), fails on accuracy-latency
//!   (Fig. 4).
//! - [`Persona::FineTuned`] — the paper's future-work model with the
//!   misconceptions corrected (kernel variation penalty, crossbar
//!   utilization awareness).
//! - [`Persona::Naive`] — the Fig. 5 ablation: no co-design knowledge at
//!   all, generic black-box hill climbing.

use crate::design::{CandidateDesign, DesignChoices};
use crate::prompt::PromptObjective;
use serde::{Deserialize, Serialize};

/// Which knowledge corner the simulated LLM embodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Persona {
    /// GPT-4 as the paper observed it (with misconceptions).
    #[default]
    Pretrained,
    /// Misconceptions corrected by task-specific fine-tuning (future
    /// work in the paper).
    FineTuned,
    /// No co-design knowledge (Fig. 5 ablation, "LCDA-naive").
    Naive,
}

impl Persona {
    /// The rules this persona reasons with.
    pub fn knowledge(self) -> KnowledgeBase {
        let mut rules = Vec::new();
        if self != Persona::Naive {
            rules.push(Heuristic {
                name: "monotone-channels",
                statement: "each layer's output channel count should be greater than or \
                            equal to its input channel count",
                correct: true,
            });
            rules.push(Heuristic {
                name: "growth-cap",
                statement: "never increase the number of output channels by more than 4x \
                            in one layer",
                correct: true,
            });
            rules.push(Heuristic {
                name: "wider-is-more-accurate",
                statement: "given the same hardware, more channels per layer generally \
                            achieve higher accuracy at higher hardware cost",
                correct: true,
            });
            rules.push(Heuristic {
                name: "avoid-degenerate-kernels",
                statement: "avoid undesirable kernel shapes such as (1,7); keep kernels \
                            square and reasonable",
                correct: true,
            });
        }
        match self {
            Persona::Pretrained => {
                rules.push(Heuristic {
                    name: "larger-kernels-boost-accuracy",
                    statement: "larger kernel sizes enhance accuracy",
                    // True in general, false on CiM: larger kernels amplify
                    // the impact of device variations (§IV-B).
                    correct: false,
                });
                rules.push(Heuristic {
                    name: "smaller-kernels-cut-latency",
                    statement: "smaller kernel sizes imply lower latency",
                    // False on crossbars: 5x5 can under-utilize the array
                    // and increase latency (§IV-B).
                    correct: false,
                });
            }
            Persona::FineTuned => {
                rules.push(Heuristic {
                    name: "kernel-variation-penalty",
                    statement: "on CiM accelerators larger kernels increase the impact of \
                                device variations, so prefer 3x3 unless capacity demands \
                                otherwise",
                    correct: true,
                });
                rules.push(Heuristic {
                    name: "kernel-utilization",
                    statement: "3x3 and 7x7 kernels utilize the crossbar well; 5x5 can \
                                leave arrays badly under-utilized and slower",
                    correct: true,
                });
            }
            Persona::Naive => {}
        }
        KnowledgeBase {
            persona: self,
            rules,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Persona::Pretrained => "pretrained",
            Persona::FineTuned => "fine-tuned",
            Persona::Naive => "naive",
        }
    }
}

/// One belief of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heuristic {
    /// Stable identifier.
    pub name: &'static str,
    /// The belief as prose.
    pub statement: &'static str,
    /// Whether the belief actually holds on CiM hardware.
    pub correct: bool,
}

/// The rule set a persona reasons with, plus the scoring model it induces.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    persona: Persona,
    rules: Vec<Heuristic>,
}

impl KnowledgeBase {
    /// The persona this knowledge belongs to.
    pub fn persona(&self) -> Persona {
        self.persona
    }

    /// The rules (for explanation generation and inspection).
    pub fn rules(&self) -> &[Heuristic] {
        &self.rules
    }

    fn has_rule(&self, name: &str) -> bool {
        self.rules.iter().any(|r| r.name == name)
    }

    /// Hard feasibility filter: does the design respect the persona's
    /// structural rules? (The naive persona accepts everything.)
    pub fn acceptable(&self, design: &CandidateDesign, in_channels: u32) -> bool {
        if self.persona == Persona::Naive {
            return true;
        }
        // The structural rules govern stage-to-stage transitions; the jump
        // from the 3-channel image input to the first stage is exempt (the
        // reference design itself goes 3 -> 32).
        let _ = in_channels;
        let mut prev: Option<u32> = None;
        for c in &design.conv {
            if let Some(p) = prev {
                if self.has_rule("monotone-channels") && c.channels < p {
                    return false;
                }
                if self.has_rule("growth-cap") && c.channels > p.saturating_mul(4) {
                    return false;
                }
            }
            prev = Some(c.channels);
        }
        true
    }

    /// Per-stage spatial sizes the model assumes from the prompt's
    /// backbone description: CIFAR input (32×32) with 2×2 pooling after
    /// every second convolution.
    fn assumed_sizes(n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut size = 32.0f64;
        for i in 0..n {
            out.push(size);
            if (i + 1) % 2 == 0 {
                size = (size / 2.0).max(1.0);
            }
        }
        out
    }

    /// Believed parameter count (the quantity scaling-law intuition runs
    /// on): conv weights plus the FC stack with hidden 1024 / 10 classes.
    fn believed_params(design: &CandidateDesign) -> f64 {
        let mut c_in = 3.0f64;
        let mut p = 0.0f64;
        for c in &design.conv {
            p += c_in * f64::from(c.kernel * c.kernel) * f64::from(c.channels);
            c_in = f64::from(c.channels);
        }
        let n = design.conv.len();
        let final_size = Self::assumed_sizes(n)
            .last()
            .map(|&s| if n.is_multiple_of(2) { s / 2.0 } else { s })
            .unwrap_or(4.0)
            .max(1.0);
        p += c_in * final_size * final_size * 1024.0 + 1024.0 * 10.0;
        p
    }

    /// Believed MAC count, the model's (roughly correct) proxy for
    /// inference energy.
    fn believed_macs(design: &CandidateDesign) -> f64 {
        let sizes = Self::assumed_sizes(design.conv.len());
        let mut c_in = 3.0f64;
        let mut macs = 0.0f64;
        for (c, &s) in design.conv.iter().zip(&sizes) {
            macs += c_in * f64::from(c.kernel * c.kernel) * f64::from(c.channels) * s * s;
            c_in = f64::from(c.channels);
        }
        macs + Self::believed_params(design)
    }

    /// MACs of the paper's reference rollout, the normalization anchor
    /// the prompt describes ("normalized to the original ISAAC design").
    fn reference_macs() -> f64 {
        Self::believed_macs(&CandidateDesign::reference())
    }

    /// The model's believed accuracy of a design — a scaling-law prior
    /// plus whatever kernel beliefs the persona holds (including the
    /// documented misconceptions).
    pub fn believed_accuracy(&self, design: &CandidateDesign) -> f64 {
        let p = Self::believed_params(design);
        let mut acc = 0.93 * p / (p + 5.0e5);
        let n = design.conv.len().max(1) as f64;
        let mean_k: f64 = design.conv.iter().map(|c| f64::from(c.kernel)).sum::<f64>() / n;
        if self.has_rule("larger-kernels-boost-accuracy") {
            // Misconception 1: "larger kernel sizes enhance accuracy" —
            // held unconditionally, blind to device variation.
            acc += 0.06 * (mean_k - 3.0);
        }
        if self.has_rule("kernel-variation-penalty") {
            // Corrected belief: large kernels amplify variation impact.
            acc -= 0.045 * (mean_k - 3.0).max(0.0);
        }
        // Shared, correct quantization intuition.
        acc -= 0.012 * f64::from(8u8.saturating_sub(design.hw.adc_bits));
        acc
    }

    /// Believed inference energy normalized to the ISAAC reference.
    ///
    /// The model holds two *correct* textbook beliefs here: energy is
    /// roughly MAC-proportional, and the ADCs dominate CiM energy (their
    /// per-conversion cost is exponential in resolution, and the number of
    /// conversions scales with the column count, i.e. inversely with the
    /// cell precision). Note the asymmetry with
    /// [`KnowledgeBase::believed_latency_norm`]: the same ADC facts on the
    /// *latency* side (mux serialization) are CiM-architecture lore the
    /// pretrained model lacks.
    pub fn believed_energy_norm(&self, design: &CandidateDesign) -> f64 {
        let ratio = Self::believed_macs(design) / Self::reference_macs();
        // ADC resolution: exponential conversion cost over a fixed floor.
        let adc_factor = 0.25 + 0.75 * f64::from(1u32 << design.hw.adc_bits) / 256.0;
        // Cell precision: fewer bit-slice columns → fewer conversions.
        let cell_factor = (2.0 / f64::from(design.hw.cell_bits)).sqrt();
        (0.08 + 0.92 * ratio) * adc_factor * cell_factor
    }

    /// Believed inference latency normalized to the ISAAC reference.
    ///
    /// This is where misconception 2 lives: the pretrained persona
    /// believes latency tracks kernel size only weakly and channels
    /// moderately — utterly blind to crossbar utilization — so enlarging
    /// kernels looks nearly free under the latency objective.
    pub fn believed_latency_norm(&self, design: &CandidateDesign) -> f64 {
        let n = design.conv.len().max(1) as f64;
        let mut lat = if self.has_rule("smaller-kernels-cut-latency") {
            // Misconception 2 in its general-hardware form: latency tracks
            // FLOPs, so kernel size enters quadratically ("smaller kernel
            // sizes typically imply lower latency"). On a weight-resident
            // crossbar this is simply wrong — latency is set by output
            // pixels, ADC sweeps and utilization, not by MACs.
            0.15 + 0.85 * Self::believed_macs(design) / Self::reference_macs()
        } else {
            // Corrected (fine-tuned) belief: latency follows activation
            // traffic / ADC sweeps, i.e. channels — kernels matter only
            // through crossbar utilization.
            let sizes = Self::assumed_sizes(design.conv.len());
            let ref_act = 32.0 * 1024.0 * 2.0 + 64.0 * 256.0 * 2.0 + 128.0 * 64.0 * 2.0;
            let act: f64 = design
                .conv
                .iter()
                .zip(&sizes)
                .map(|(c, &s)| f64::from(c.channels) * s * s)
                .sum();
            0.25 + 0.75 * act / ref_act
        };
        if self.has_rule("kernel-utilization") {
            // Corrected belief: 5×5 sits in the crossbar utilization hole.
            let k5 = design.conv.iter().filter(|c| c.kernel == 5).count() as f64;
            lat *= 1.0 + 0.25 * k5 / n;
        }
        // Bigger crossbars genuinely help throughput (shared, correct).
        lat / (f64::from(design.hw.xbar_size) / 128.0).sqrt()
    }

    /// The persona's *believed* desirability of a design under an
    /// objective — its internal estimate of the reward the prompt
    /// describes. A prior, not ground truth: the misconceptions make the
    /// pretrained persona chase larger kernels under the latency
    /// objective (the paper's Fig. 4 failure mode).
    pub fn believed_score(&self, design: &CandidateDesign, objective: PromptObjective) -> f64 {
        if self.persona == Persona::Naive {
            // Generic "bigger model scores better" prior, objective-blind.
            let capacity: f64 = design
                .conv
                .iter()
                .map(|c| f64::from(c.channels) * f64::from(c.kernel))
                .sum();
            return capacity.ln();
        }
        let acc = self.believed_accuracy(design);
        match objective {
            PromptObjective::AccuracyEnergy => {
                acc - self.believed_energy_norm(design).max(0.0).sqrt()
            }
            PromptObjective::AccuracyLatency => {
                acc + 1.0 / self.believed_latency_norm(design).max(1e-3)
            }
            PromptObjective::Naive => acc - 0.2 * self.believed_energy_norm(design),
        }
    }

    /// The persona's preferred starting design before any feedback: a
    /// textbook monotone ramp with 3×3 kernels on mid-range hardware.
    ///
    /// # Panics
    ///
    /// Panics when `choices` fails validation (callers validate first).
    pub fn prior_design(&self, choices: &DesignChoices) -> CandidateDesign {
        choices.validate().expect("choices validated by caller");
        let n = choices.num_conv_layers;
        let opts = &choices.channel_options;
        // Ramp through the channel options: low → high across stages.
        let conv = (0..n)
            .map(|l| {
                let pos = ((l + 1) * (opts.len() - 1)) / n.max(1);
                let kernel = preferred_kernel(&choices.kernel_options);
                crate::design::ConvChoice {
                    channels: opts[pos.min(opts.len() - 1)],
                    kernel,
                }
            })
            .collect();
        CandidateDesign {
            conv,
            hw: crate::design::HwChoice {
                xbar_size: choices.xbar_options[choices.xbar_options.len() / 2],
                adc_bits: *choices.adc_options.last().expect("validated non-empty"),
                cell_bits: choices.cell_options[choices.cell_options.len() / 2],
                tech: choices.tech_options[0].clone(),
            },
        }
    }
}

/// The kernel the expert personas reach for by default: 3 when available.
fn preferred_kernel(options: &[u32]) -> u32 {
    if options.contains(&3) {
        3
    } else {
        options[options.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{ConvChoice, HwChoice};

    fn design(pairs: &[(u32, u32)]) -> CandidateDesign {
        CandidateDesign {
            conv: pairs
                .iter()
                .map(|&(c, k)| ConvChoice {
                    channels: c,
                    kernel: k,
                })
                .collect(),
            hw: HwChoice {
                xbar_size: 128,
                adc_bits: 8,
                cell_bits: 2,
                tech: "rram".into(),
            },
        }
    }

    #[test]
    fn personas_have_expected_rules() {
        let pre = Persona::Pretrained.knowledge();
        assert!(pre.rules().iter().any(|r| !r.correct));
        assert!(pre
            .rules()
            .iter()
            .any(|r| r.name == "larger-kernels-boost-accuracy"));

        let ft = Persona::FineTuned.knowledge();
        assert!(ft.rules().iter().all(|r| r.correct));
        assert!(ft.rules().iter().any(|r| r.name == "kernel-utilization"));

        let naive = Persona::Naive.knowledge();
        assert!(naive.rules().is_empty());
    }

    #[test]
    fn monotone_channel_constraint() {
        let kb = Persona::Pretrained.knowledge();
        assert!(kb.acceptable(&design(&[(16, 3), (32, 3), (64, 3)]), 3));
        // Shrinking channels violates monotonicity.
        assert!(!kb.acceptable(&design(&[(64, 3), (32, 3), (64, 3)]), 3));
        // Naive accepts anything.
        assert!(Persona::Naive
            .knowledge()
            .acceptable(&design(&[(64, 3), (16, 3)]), 3));
    }

    #[test]
    fn growth_cap_constraint() {
        let kb = Persona::Pretrained.knowledge();
        // 16 → 96 is a 6x jump.
        assert!(!kb.acceptable(&design(&[(16, 3), (96, 3)]), 3));
        // 16 → 64 is exactly 4x.
        assert!(kb.acceptable(&design(&[(16, 3), (64, 3)]), 3));
    }

    #[test]
    fn misconception_one_inflates_kernel_accuracy_belief() {
        // "Larger kernel sizes enhance accuracy" — the pretrained persona
        // credits big kernels beyond their parameter contribution; the
        // fine-tuned persona penalizes them (variation awareness).
        let pre = Persona::Pretrained.knowledge();
        let ft = Persona::FineTuned.knowledge();
        let k3 = design(&[(32, 3); 6]);
        let k7 = design(&[(32, 7); 6]);
        let pre_gap = pre.believed_accuracy(&k7) - pre.believed_accuracy(&k3);
        let ft_gap = ft.believed_accuracy(&k7) - ft.believed_accuracy(&k3);
        assert!(pre_gap > ft_gap, "pre {pre_gap} vs ft {ft_gap}");
        assert!(pre_gap > 0.1, "misconception should inflate k7: {pre_gap}");
    }

    #[test]
    fn misconception_two_drives_kernels_down_under_latency() {
        // "Smaller kernel sizes imply lower latency" (FLOPs intuition):
        // the pretrained persona believes k=1 beats k=3 on the latency
        // objective; the fine-tuned persona knows crossbar latency does
        // not track kernel size and prefers k=3 for its accuracy.
        let pre = Persona::Pretrained.knowledge();
        let ft = Persona::FineTuned.knowledge();
        let k1 = design(&[(32, 1); 6]);
        let k3 = design(&[(32, 3); 6]);
        assert!(
            pre.believed_score(&k1, PromptObjective::AccuracyLatency)
                > pre.believed_score(&k3, PromptObjective::AccuracyLatency)
        );
        assert!(
            ft.believed_score(&k3, PromptObjective::AccuracyLatency)
                > ft.believed_score(&k1, PromptObjective::AccuracyLatency)
        );
    }

    #[test]
    fn finetuned_prefers_k3_on_latency() {
        let ft = Persona::FineTuned.knowledge();
        let k3 = ft.believed_score(&design(&[(32, 3); 6]), PromptObjective::AccuracyLatency);
        let k5 = ft.believed_score(&design(&[(32, 5); 6]), PromptObjective::AccuracyLatency);
        let k7 = ft.believed_score(&design(&[(32, 7); 6]), PromptObjective::AccuracyLatency);
        assert!(k3 > k5);
        assert!(
            k7 > k5,
            "7x7 utilizes better than 5x5 in the corrected belief"
        );
    }

    #[test]
    fn wider_layers_believed_more_accurate() {
        let kb = Persona::Pretrained.knowledge();
        let narrow = design(&[(16, 3); 6]);
        let wide = design(&[(64, 3); 6]);
        assert!(kb.believed_accuracy(&wide) > kb.believed_accuracy(&narrow));
    }

    #[test]
    fn believed_energy_tracks_macs() {
        let kb = Persona::Pretrained.knowledge();
        let small = design(&[(16, 3); 6]);
        let big = design(&[(128, 3); 6]);
        assert!(kb.believed_energy_norm(&big) > kb.believed_energy_norm(&small));
        // The reference rollout should be believed near its normalization
        // anchor (1.0) — GPT-4's energy intuition is roughly right.
        let reference = CandidateDesign::reference();
        let e = kb.believed_energy_norm(&reference);
        assert!((0.7..=1.3).contains(&e), "reference believed energy {e}");
    }

    #[test]
    fn prior_design_is_monotone_k3() {
        let choices = DesignChoices::nacim_default();
        let kb = Persona::Pretrained.knowledge();
        let d = kb.prior_design(&choices);
        assert!(kb.acceptable(&d, 3));
        assert!(d.conv.iter().all(|c| c.kernel == 3));
        assert!(choices.contains(&d).is_ok());
        let mut prev = 0;
        for c in &d.conv {
            assert!(c.channels >= prev);
            prev = c.channels;
        }
    }

    #[test]
    fn persona_names() {
        assert_eq!(Persona::Pretrained.name(), "pretrained");
        assert_eq!(Persona::FineTuned.name(), "fine-tuned");
        assert_eq!(Persona::Naive.name(), "naive");
    }
}
