//! Observation hooks for the LLM stack.
//!
//! The co-design runtime wants to *see* what the model layer is doing —
//! every prompt, parse failure, injected fault, retry, and circuit-breaker
//! transition — without the LLM crates knowing anything about journals or
//! report formats. This module provides the narrow waist: a typed
//! [`LlmEvent`] stream and a cheaply cloneable [`ObserverHandle`] that the
//! optimizer and the [`crate::middleware`] stack emit into. Higher layers
//! (the `lcda-core` run journal) install an observer; when none is
//! installed every emit is a no-op, so instrumented code costs nothing in
//! un-observed runs.
//!
//! Events carry only deterministic payloads (call indices, attempt
//! numbers, simulated-clock delays) so an observer that logs them can be
//! byte-reproducible across identical seeded runs.

use std::fmt;
use std::sync::{Arc, Mutex};

/// One observable moment in the LLM stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmEvent {
    /// The optimizer sent a prompt to the model.
    Prompt {
        /// The optimizer episode the prompt belongs to.
        episode: u32,
        /// Attempt number within the episode (0 = first try, >0 = retry
        /// with a corrective note).
        attempt: u32,
        /// Rendered prompt length in bytes.
        chars: u64,
    },
    /// A model response could not be parsed into a design.
    ParseFailure {
        /// The optimizer episode the response belonged to.
        episode: u32,
        /// The parse error, single line.
        error: String,
    },
    /// The fault-injection layer fired a scheduled fault.
    Fault {
        /// The model-call index the fault was scheduled at.
        call: u64,
        /// Stable fault-kind label (`rate_limit`, `timeout`, `garbage`,
        /// `truncated`, `latency_spike`).
        kind: &'static str,
    },
    /// The retry layer is about to re-issue a failed call.
    Retry {
        /// Retry attempt number (0-based: the first retry is 0).
        attempt: u32,
        /// Backoff delay charged to the simulated clock, milliseconds.
        delay_ms: u64,
    },
    /// The circuit breaker opened (or re-opened after a failed probe).
    CircuitOpened {
        /// Consecutive failures that tripped it.
        failures: u32,
    },
    /// The circuit breaker closed after a successful probe.
    CircuitClosed,
    /// The optimizer served a proposal from its fallback instead of the
    /// model (degraded mode).
    Degraded {
        /// Name of the fallback optimizer that produced the proposal.
        fallback: String,
    },
}

/// A sink for [`LlmEvent`]s, installed behind an [`ObserverHandle`].
pub trait LlmObserver: Send {
    /// Receives one event. Implementations must not panic.
    fn record(&mut self, event: &LlmEvent);
}

/// A cheaply cloneable, optionally-empty handle to a shared observer.
///
/// All clones feed the same underlying observer; the default handle is
/// empty and every [`ObserverHandle::emit`] through it is a no-op. This is
/// the type the middleware structs and [`LanguageModel`] optimizers store,
/// so instrumentation never changes their construction signatures.
///
/// [`LanguageModel`]: crate::LanguageModel
#[derive(Clone, Default)]
pub struct ObserverHandle {
    observer: Option<Arc<Mutex<Box<dyn LlmObserver>>>>,
}

impl ObserverHandle {
    /// The empty handle: every emit is a no-op.
    pub fn none() -> Self {
        ObserverHandle::default()
    }

    /// Wraps an observer so it can be shared across the stack.
    pub fn new(observer: Box<dyn LlmObserver>) -> Self {
        ObserverHandle {
            observer: Some(Arc::new(Mutex::new(observer))),
        }
    }

    /// True when an observer is installed.
    pub fn is_active(&self) -> bool {
        self.observer.is_some()
    }

    /// Sends one event to the installed observer (no-op when empty).
    pub fn emit(&self, event: LlmEvent) {
        if let Some(observer) = &self.observer {
            if let Ok(mut guard) = observer.lock() {
                guard.record(&event);
            }
        }
    }
}

impl fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverHandle")
            .field("active", &self.is_active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A collector whose event log is shared so the test can read it back
    /// after handing the observer to a handle.
    struct SharedCollector(Arc<Mutex<Vec<LlmEvent>>>);
    impl LlmObserver for SharedCollector {
        fn record(&mut self, event: &LlmEvent) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn empty_handle_is_a_noop() {
        let h = ObserverHandle::none();
        assert!(!h.is_active());
        h.emit(LlmEvent::CircuitClosed); // must not panic
    }

    #[test]
    fn clones_share_one_observer() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let h = ObserverHandle::new(Box::new(SharedCollector(log.clone())));
        assert!(h.is_active());
        let h2 = h.clone();
        h.emit(LlmEvent::Prompt {
            episode: 0,
            attempt: 0,
            chars: 12,
        });
        h2.emit(LlmEvent::Retry {
            attempt: 0,
            delay_ms: 100,
        });
        let events = log.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], LlmEvent::Prompt { chars: 12, .. }));
        assert!(matches!(events[1], LlmEvent::Retry { delay_ms: 100, .. }));
    }
}
