//! The deterministic simulated LLM standing in for GPT-4.
//!
//! `SimLlm` is text-in, text-out: it receives the rendered Algorithm-1
//! prompt, *parses* the design space, objective marker and exploration
//! history back out of the text (exactly the information a real LLM would
//! read), applies its persona's knowledge base to generate a next design,
//! and returns response text in the format the prompt requested —
//! sometimes wrapped in a little prose, because real models rarely obey
//! "do not include anything else" perfectly and the parser must cope.
//!
//! The proposal policy is the paper's description of GPT-4's observed
//! behaviour made explicit: start from a heuristically sensible prior,
//! then hill-climb around the best explored design through
//! knowledge-filtered local mutations, ranked by the persona's *believed*
//! score (including its misconceptions).

use crate::design::{CandidateDesign, DesignChoices};
use crate::parse::parse_history;
use crate::persona::{KnowledgeBase, Persona};
use crate::prompt::PromptObjective;
use crate::{LanguageModel, LlmError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The simulated language model.
#[derive(Debug)]
pub struct SimLlm {
    knowledge: KnowledgeBase,
    rng: StdRng,
    name: String,
    last_rationale: Option<String>,
    /// Input channels of the backbone (3 for CIFAR) used by the
    /// feasibility rules.
    in_channels: u32,
}

impl SimLlm {
    /// Creates a simulated LLM with the given persona and seed.
    pub fn new(persona: Persona, seed: u64) -> Self {
        SimLlm {
            knowledge: persona.knowledge(),
            rng: StdRng::seed_from_u64(seed),
            name: format!("sim-llm/{}", persona.name()),
            last_rationale: None,
            in_channels: 3,
        }
    }

    /// The persona in use.
    pub fn persona(&self) -> Persona {
        self.knowledge.persona()
    }

    /// The explanation of the most recent proposal — the paper's
    /// "explainable NAS" future-work feature: design changes between
    /// episodes are human-readable and the model can justify them.
    pub fn last_rationale(&self) -> Option<&str> {
        self.last_rationale.as_deref()
    }

    /// Detects the objective marker in a prompt.
    fn detect_objective(prompt: &str) -> Result<PromptObjective> {
        if prompt.contains("objective: accuracy-energy") {
            Ok(PromptObjective::AccuracyEnergy)
        } else if prompt.contains("objective: accuracy-latency") {
            Ok(PromptObjective::AccuracyLatency)
        } else if prompt.contains("objective: generic") {
            Ok(PromptObjective::Naive)
        } else {
            Err(LlmError::UnintelligiblePrompt(
                "no objective marker found".to_string(),
            ))
        }
    }

    fn mutations(&self, base: &CandidateDesign, choices: &DesignChoices) -> Vec<CandidateDesign> {
        neighborhood(base, choices)
    }

    /// Uniformly random design (the naive persona's exploration move).
    fn random_design(&mut self, choices: &DesignChoices) -> CandidateDesign {
        let idx: Vec<usize> = (0..choices.slot_count())
            .map(|s| self.rng.gen_range(0..choices.slot_options(s)))
            .collect();
        choices
            .decode(&idx)
            .expect("indices in range by construction")
    }

    /// The core proposal routine.
    fn propose(
        &mut self,
        choices: &DesignChoices,
        history: &[(CandidateDesign, f64)],
        objective: PromptObjective,
    ) -> CandidateDesign {
        let explored: HashSet<&CandidateDesign> = history.iter().map(|(d, _)| d).collect();

        // Cold-start: the expert personas open with their textbook prior;
        // the naive persona guesses.
        if history.is_empty() {
            let d = if self.persona() == Persona::Naive {
                self.random_design(choices)
            } else {
                self.knowledge.prior_design(choices)
            };
            self.last_rationale = Some(format!(
                "opening proposal from prior knowledge: monotone channel ramp with \
                 preferred kernels ({} persona)",
                self.persona().name()
            ));
            return d;
        }

        // Anchor on the best explored design.
        let best = history
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(d, _)| d.clone())
            .expect("history non-empty");

        // Candidate pool: local mutations of the best design (plus, for the
        // naive persona, pure random jumps).
        let mut pool = self.mutations(&best, choices);
        if self.persona() == Persona::Naive {
            for _ in 0..8 {
                let d = self.random_design(choices);
                pool.push(d);
            }
        }
        pool.retain(|d| !explored.contains(d));
        pool.retain(|d| self.knowledge.acceptable(d, self.in_channels));

        if pool.is_empty() {
            // Deterministic fallback: random unexplored feasible design.
            for _ in 0..256 {
                let d = self.random_design(choices);
                if !explored.contains(&d) && self.knowledge.acceptable(&d, self.in_channels) {
                    self.last_rationale = Some(
                        "local neighbourhood exhausted; jumping to a fresh feasible design"
                            .to_string(),
                    );
                    return d;
                }
            }
            self.last_rationale = Some("space exhausted; repeating best design".to_string());
            return best;
        }

        // Rank by believed score with a pinch of tie-breaking noise.
        let mut scored: Vec<(f64, CandidateDesign)> = pool
            .into_iter()
            .map(|d| {
                let s =
                    self.knowledge.believed_score(&d, objective) + self.rng.gen_range(-0.01..0.01);
                (s, d)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let chosen = scored[0].1.clone();
        self.last_rationale = Some(self.rationale(&best, &chosen, objective));
        chosen
    }

    /// Human-readable justification of a move from `from` to `to`.
    fn rationale(
        &self,
        from: &CandidateDesign,
        to: &CandidateDesign,
        objective: PromptObjective,
    ) -> String {
        let mut parts = Vec::new();
        for (i, (a, b)) in from.conv.iter().zip(&to.conv).enumerate() {
            if a.channels != b.channels {
                parts.push(format!(
                    "layer {i}: channels {} -> {} ({})",
                    a.channels,
                    b.channels,
                    if b.channels > a.channels {
                        "wider layers generally achieve higher accuracy"
                    } else {
                        "narrowing to cut hardware cost"
                    }
                ));
            }
            if a.kernel != b.kernel {
                let why = match (self.persona(), objective) {
                    (Persona::Pretrained, _) if b.kernel > a.kernel => {
                        "larger kernel sizes enhance accuracy"
                    }
                    (Persona::Pretrained, PromptObjective::AccuracyLatency) => {
                        "smaller kernel sizes imply lower latency"
                    }
                    (Persona::FineTuned, _) => {
                        "keeping kernels in high-utilization, low-variation shapes"
                    }
                    _ => "exploring kernel size",
                };
                parts.push(format!(
                    "layer {i}: kernel {} -> {} ({why})",
                    a.kernel, b.kernel
                ));
            }
        }
        if from.hw != to.hw {
            parts.push(format!(
                "hardware: xbar {} -> {}, adc {} -> {}, cell {} -> {}, tech {} -> {}",
                from.hw.xbar_size,
                to.hw.xbar_size,
                from.hw.adc_bits,
                to.hw.adc_bits,
                from.hw.cell_bits,
                to.hw.cell_bits,
                from.hw.tech,
                to.hw.tech
            ));
        }
        if parts.is_empty() {
            "proposing the anchor design again".to_string()
        } else {
            parts.join("; ")
        }
    }
}

impl LanguageModel for SimLlm {
    fn complete(&mut self, prompt: &str) -> Result<String> {
        let objective = Self::detect_objective(prompt)?;
        let choices = parse_choices(prompt)?;
        let history = parse_history(prompt, &choices);
        let design = self.propose(&choices, &history, objective);
        // Real models sometimes ignore "respond with the list only"; vary
        // the dressing deterministically so the tolerant parser is
        // exercised end to end.
        let dressing = self.rng.gen_range(0..3);
        Ok(match dressing {
            0 => design.to_response_text(),
            1 => format!("Based on the results so far, I suggest: {design}"),
            _ => format!("{design}\n\nThis should improve the performance further."),
        })
    }

    fn model_name(&self) -> &str {
        &self.name
    }
}

/// Parses the design-space section out of a rendered prompt (the simulated
/// LLM's "reading comprehension").
///
/// # Errors
///
/// Returns [`LlmError::UnintelligiblePrompt`] when a required line is
/// missing or malformed.
pub fn parse_choices(prompt: &str) -> Result<DesignChoices> {
    fn find_list(prompt: &str, key: &str) -> Result<Vec<String>> {
        for line in prompt.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix(key) {
                let rest = rest.trim();
                let open = rest.find('[').ok_or_else(|| {
                    LlmError::UnintelligiblePrompt(format!("{key} line has no list"))
                })?;
                let close = rest.rfind(']').ok_or_else(|| {
                    LlmError::UnintelligiblePrompt(format!("{key} line unterminated"))
                })?;
                return Ok(rest[open + 1..close]
                    .split(',')
                    .map(|s| s.trim().trim_matches('"').to_string())
                    .filter(|s| !s.is_empty())
                    .collect());
            }
        }
        Err(LlmError::UnintelligiblePrompt(format!(
            "missing `{key}` section"
        )))
    }
    fn nums<T: std::str::FromStr>(items: Vec<String>, key: &str) -> Result<Vec<T>> {
        items
            .into_iter()
            .map(|s| {
                s.parse::<T>().map_err(|_| {
                    LlmError::UnintelligiblePrompt(format!("bad number `{s}` in {key}"))
                })
            })
            .collect()
    }

    let layers_line = prompt
        .lines()
        .map(str::trim)
        .find_map(|l| l.strip_prefix("layers:"))
        .ok_or_else(|| LlmError::UnintelligiblePrompt("missing `layers:` line".into()))?;
    let num_conv_layers: usize = layers_line.trim().parse().map_err(|_| {
        LlmError::UnintelligiblePrompt(format!("bad layer count `{}`", layers_line.trim()))
    })?;

    let choices = DesignChoices {
        channel_options: nums(find_list(prompt, "channels:")?, "channels")?,
        kernel_options: nums(find_list(prompt, "kernels:")?, "kernels")?,
        num_conv_layers,
        xbar_options: nums(find_list(prompt, "xbar:")?, "xbar")?,
        adc_options: nums(find_list(prompt, "adc_bits:")?, "adc_bits")?,
        cell_options: nums(find_list(prompt, "cell_bits:")?, "cell_bits")?,
        tech_options: find_list(prompt, "tech:")?,
    };
    choices.validate()?;
    Ok(choices)
}

/// The mutation neighbourhood of a design: single-slot steps, double
/// steps, and the *global rewrites* an LLM naturally produces when it
/// re-emits a whole rollout — scaling every layer's channels or every
/// kernel together, or re-scaling just the front or back half of the
/// network. The composite moves are what let knowledge-guided optimizers
/// traverse the space in ~20 episodes instead of hundreds.
pub fn neighborhood(base: &CandidateDesign, choices: &DesignChoices) -> Vec<CandidateDesign> {
    let mut out = Vec::new();
    let Ok(base_idx) = choices.encode(base) else {
        return out;
    };
    let n_layers = choices.num_conv_layers;
    let mut push = |idx: &[usize]| {
        if let Ok(d) = choices.decode(idx) {
            out.push(d);
        }
    };
    let step = |idx: &mut [usize], slot: usize, delta: isize| -> bool {
        let n = choices.slot_options(slot) as isize;
        let next = idx[slot] as isize + delta;
        if next < 0 || next >= n {
            return false;
        }
        idx[slot] = next as usize;
        true
    };

    // Single- and double-step moves on every slot.
    for slot in 0..choices.slot_count() {
        for delta in [-1isize, 1, -2, 2] {
            let mut idx = base_idx.clone();
            if step(&mut idx, slot, delta) {
                push(&idx);
            }
        }
    }
    // Global channel rescale: every layer one option up/down.
    for delta in [-1isize, 1] {
        let mut idx = base_idx.clone();
        let mut moved = false;
        for l in 0..n_layers {
            moved |= step(&mut idx, 2 * l, delta);
        }
        if moved {
            push(&idx);
        }
    }
    // Front-half / back-half channel rescale.
    for delta in [-1isize, 1] {
        for (lo, hi) in [(0, n_layers / 2), (n_layers / 2, n_layers)] {
            let mut idx = base_idx.clone();
            let mut moved = false;
            for l in lo..hi {
                moved |= step(&mut idx, 2 * l, delta);
            }
            if moved {
                push(&idx);
            }
        }
    }
    // Global kernel shift: every layer's kernel one option up/down.
    for delta in [-1isize, 1] {
        let mut idx = base_idx.clone();
        let mut moved = false;
        for l in 0..n_layers {
            moved |= step(&mut idx, 2 * l + 1, delta);
        }
        if moved {
            push(&idx);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_design;
    use crate::prompt::{HistoryEntry, PromptBuilder};

    fn run_episode(
        llm: &mut SimLlm,
        choices: &DesignChoices,
        history: &[HistoryEntry],
        objective: PromptObjective,
    ) -> CandidateDesign {
        let prompt = PromptBuilder::new(choices)
            .objective(objective)
            .render(history);
        let response = llm.complete(&prompt).unwrap();
        parse_design(&response, choices).unwrap()
    }

    #[test]
    fn choices_roundtrip_through_prompt() {
        let choices = DesignChoices::nacim_default();
        let prompt = PromptBuilder::new(&choices).render(&[]);
        let parsed = parse_choices(&prompt).unwrap();
        assert_eq!(parsed, choices);
    }

    #[test]
    fn first_proposal_is_feasible_and_monotone() {
        let choices = DesignChoices::nacim_default();
        let mut llm = SimLlm::new(Persona::Pretrained, 1);
        let d = run_episode(&mut llm, &choices, &[], PromptObjective::AccuracyEnergy);
        assert!(Persona::Pretrained.knowledge().acceptable(&d, 3));
        assert!(llm.last_rationale().is_some());
    }

    #[test]
    fn proposals_avoid_repeats() {
        let choices = DesignChoices::nacim_default();
        let mut llm = SimLlm::new(Persona::Pretrained, 2);
        let mut history = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for ep in 0..10 {
            let d = run_episode(
                &mut llm,
                &choices,
                &history,
                PromptObjective::AccuracyEnergy,
            );
            assert!(seen.insert(d.clone()), "episode {ep} repeated {d}");
            // Feed back a fake reward that mildly prefers wide nets.
            let perf = d.conv.iter().map(|c| c.channels as f64).sum::<f64>() / 1000.0;
            history.push(HistoryEntry {
                design: d,
                performance: perf,
            });
        }
    }

    #[test]
    fn pretrained_respects_constraints_always() {
        let choices = DesignChoices::nacim_default();
        let kb = Persona::Pretrained.knowledge();
        let mut llm = SimLlm::new(Persona::Pretrained, 3);
        let mut history = Vec::new();
        for _ in 0..15 {
            let d = run_episode(
                &mut llm,
                &choices,
                &history,
                PromptObjective::AccuracyEnergy,
            );
            assert!(kb.acceptable(&d, 3), "infeasible proposal {d}");
            history.push(HistoryEntry {
                design: d,
                performance: 0.1,
            });
        }
    }

    #[test]
    fn naive_persona_wanders_outside_constraints() {
        let choices = DesignChoices::nacim_default();
        let kb = Persona::Pretrained.knowledge();
        let mut llm = SimLlm::new(Persona::Naive, 4);
        let mut history = Vec::new();
        let mut violations = 0;
        for _ in 0..25 {
            let d = run_episode(&mut llm, &choices, &history, PromptObjective::Naive);
            if !kb.acceptable(&d, 3) {
                violations += 1;
            }
            history.push(HistoryEntry {
                design: d,
                performance: 0.0,
            });
        }
        assert!(
            violations > 3,
            "naive persona should produce unprincipled designs, got {violations}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let choices = DesignChoices::nacim_default();
        let prompt = PromptBuilder::new(&choices).render(&[]);
        let a = SimLlm::new(Persona::Pretrained, 7)
            .complete(&prompt)
            .unwrap();
        let b = SimLlm::new(Persona::Pretrained, 7)
            .complete(&prompt)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unintelligible_prompt_rejected() {
        let mut llm = SimLlm::new(Persona::Pretrained, 5);
        assert!(llm.complete("hello, who are you?").is_err());
        // Marker but no design space:
        assert!(llm.complete("objective: accuracy-energy").is_err());
    }

    #[test]
    fn pretrained_explores_larger_kernels_under_latency_objective() {
        // The Fig. 4 mechanism: with both misconceptions active, the
        // pretrained persona drifts away from all-3x3 kernels.
        let choices = DesignChoices::nacim_default();
        let mut llm = SimLlm::new(Persona::Pretrained, 6);
        let mut history = Vec::new();
        let mut saw_nonstandard_kernel = false;
        for _ in 0..20 {
            let d = run_episode(
                &mut llm,
                &choices,
                &history,
                PromptObjective::AccuracyLatency,
            );
            if d.conv.iter().any(|c| c.kernel != 3) {
                saw_nonstandard_kernel = true;
            }
            history.push(HistoryEntry {
                design: d,
                performance: 0.2,
            });
        }
        assert!(saw_nonstandard_kernel);
    }

    #[test]
    fn finetuned_sticks_to_efficient_kernels_under_latency() {
        let choices = DesignChoices::nacim_default();
        let mut llm = SimLlm::new(Persona::FineTuned, 6);
        let mut history = Vec::new();
        let mut k5_count = 0;
        for _ in 0..20 {
            let d = run_episode(
                &mut llm,
                &choices,
                &history,
                PromptObjective::AccuracyLatency,
            );
            k5_count += d.conv.iter().filter(|c| c.kernel == 5).count();
            history.push(HistoryEntry {
                design: d,
                performance: 0.2,
            });
        }
        assert!(
            k5_count <= 2,
            "fine-tuned persona should avoid the 5x5 utilization hole, saw {k5_count}"
        );
    }

    #[test]
    fn model_name_reflects_persona() {
        assert_eq!(SimLlm::new(Persona::Naive, 0).model_name(), "sim-llm/naive");
    }
}
