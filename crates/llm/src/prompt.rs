//! The Algorithm-1 prompt template (`GPT-Prompts`).
//!
//! Renders the system and user prompts the paper sends to GPT-4: the role
//! statement, the task framing, the backbone model description, the design
//! space, the history of explored designs with their normalized
//! performance, and the response-format instruction. The rendered text is
//! what a [`crate::LanguageModel`] consumes — including the simulated LLM,
//! which must *parse this text back*, so the template doubles as a wire
//! format.

use crate::design::{CandidateDesign, DesignChoices};
use serde::{Deserialize, Serialize};

/// Which multi-objective trade-off the prompt asks the model to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PromptObjective {
    /// §IV-A: balance accuracy and inference energy (Eq. 1).
    #[default]
    AccuracyEnergy,
    /// §IV-B: balance accuracy and inference latency (Eq. 2).
    AccuracyLatency,
    /// Fig. 5 ablation: generic black-box optimization with no co-design
    /// framing at all.
    Naive,
}

impl PromptObjective {
    /// The prose injected into the prompt for this objective.
    pub fn description(self) -> &'static str {
        match self {
            PromptObjective::AccuracyEnergy => {
                "The model's performance is a combination of hardware performance and \
                 model accuracy: the reward is the model accuracy minus the square root \
                 of the inference energy normalized to the original ISAAC design \
                 (8e7 pJ). Lower energy is better."
            }
            PromptObjective::AccuracyLatency => {
                "The model's performance is a combination of hardware performance and \
                 model accuracy: the reward is the model accuracy plus the frames per \
                 second normalized to the original ISAAC design (1600 FPS). Lower \
                 latency is better."
            }
            PromptObjective::Naive => {
                "The performance is a black-box score of the parameter vector. Higher \
                 is better."
            }
        }
    }

    /// Marker token embedded in the prompt so a text-only model can detect
    /// the objective (the simulated LLM keys off this).
    pub fn marker(self) -> &'static str {
        match self {
            PromptObjective::AccuracyEnergy => "objective: accuracy-energy",
            PromptObjective::AccuracyLatency => "objective: accuracy-latency",
            PromptObjective::Naive => "objective: generic",
        }
    }
}

/// One explored design with its normalized performance (an entry of
/// `l_des` / `l_perf`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// The explored design.
    pub design: CandidateDesign,
    /// Its scalar performance (−1 for invalid hardware, per the paper).
    pub performance: f64,
}

/// Renders Algorithm-1 prompts for a fixed design space and objective.
#[derive(Debug, Clone)]
pub struct PromptBuilder {
    choices: DesignChoices,
    objective: PromptObjective,
}

/// Section header that precedes the design-space description; part of the
/// wire format parsed by the simulated LLM.
pub const CHOICES_HEADER: &str = "Available options per decision:";

/// Section header that precedes the history lines.
pub const HISTORY_HEADER: &str =
    "Here are some experimental results that you can use as a reference:";

/// Prefix of each history line.
pub const HISTORY_LINE_PREFIX: &str = "design ";

impl PromptBuilder {
    /// Creates a builder over a design space with the default
    /// (accuracy-energy) objective.
    pub fn new(choices: &DesignChoices) -> Self {
        PromptBuilder {
            choices: choices.clone(),
            objective: PromptObjective::AccuracyEnergy,
        }
    }

    /// Selects the objective framing.
    pub fn objective(mut self, objective: PromptObjective) -> Self {
        self.objective = objective;
        self
    }

    /// The paper's system prompt (`prompt_s`).
    pub fn system_prompt(&self) -> &'static str {
        match self.objective {
            PromptObjective::Naive => "You are a helpful assistant.",
            _ => "You are an expert in the field of neural architecture search.",
        }
    }

    /// Renders the full prompt (system + user) for the given exploration
    /// history.
    pub fn render(&self, history: &[HistoryEntry]) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(self.system_prompt());
        out.push_str("\n\n");
        match self.objective {
            PromptObjective::Naive => {
                out.push_str("Your task is to suggest a parameter vector that maximizes a score. ");
            }
            _ => {
                out.push_str(
                    "Your task is to assist me in selecting the best rollout numbers for a \
                     given model architecture. The model will be trained and tested on \
                     CIFAR10, and your objective will be to maximize the model's \
                     performance on CIFAR10. The model architecture is a backbone of six \
                     convolution layers (each followed by ReLU, with 2x2 max pooling after \
                     every second layer) and two fully connected layers with hidden size \
                     1024, deployed on a compute-in-memory crossbar accelerator. ",
                );
            }
        }
        out.push_str(self.objective.description());
        out.push('\n');
        out.push_str(self.objective.marker());
        out.push_str("\n\n");

        out.push_str(CHOICES_HEADER);
        out.push('\n');
        out.push_str(&format!(
            "channels: {:?}\nkernels: {:?}\nlayers: {}\nxbar: {:?}\nadc_bits: {:?}\ncell_bits: {:?}\ntech: {:?}\n\n",
            self.choices.channel_options,
            self.choices.kernel_options,
            self.choices.num_conv_layers,
            self.choices.xbar_options,
            self.choices.adc_options,
            self.choices.cell_options,
            self.choices.tech_options,
        ));

        out.push_str(
            "If the hardware is invalid (e.g., too large in area), the performance I \
             give you will be -1. After you give me a rollout list, I will give you the \
             design's performance I calculated.\n\n",
        );

        out.push_str(HISTORY_HEADER);
        out.push('\n');
        if history.is_empty() {
            out.push_str("(no designs explored yet)\n");
        } else {
            for h in history {
                out.push_str(HISTORY_LINE_PREFIX);
                out.push_str(&h.design.to_response_text());
                out.push_str(&format!(" -> perf: {:.6}\n", h.performance));
            }
        }
        out.push('\n');
        out.push_str(
            "Please suggest a rollout list that can improve the model's performance \
             beyond the experimental results provided above. Your response should be the \
             rollout list consisting of ",
        );
        out.push_str(&format!(
            "{} number pairs followed by the hardware choice, e.g. \
             [[32,3],[32,3],[64,3],[64,3],[128,3],[128,3]] | hw: [128,8,2,rram]. \
             Please do not include anything else other than the rollout list in your \
             response.",
            self.choices.num_conv_layers
        ));
        out
    }

    /// The design space this builder renders.
    pub fn choices(&self) -> &DesignChoices {
        &self.choices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prompt_contains_all_sections() {
        let choices = DesignChoices::nacim_default();
        let p = PromptBuilder::new(&choices).render(&[]);
        assert!(p.contains("expert in the field of neural architecture search"));
        assert!(p.contains(CHOICES_HEADER));
        assert!(p.contains(HISTORY_HEADER));
        assert!(p.contains("(no designs explored yet)"));
        assert!(p.contains("performance I give you will be -1"));
        assert!(p.contains("objective: accuracy-energy"));
        assert!(p.contains("channels: [16, 24, 32, 48, 64, 96, 128]"));
    }

    #[test]
    fn history_is_rendered() {
        let choices = DesignChoices::nacim_default();
        let history = vec![
            HistoryEntry {
                design: CandidateDesign::reference(),
                performance: 0.5123,
            },
            HistoryEntry {
                design: CandidateDesign::reference(),
                performance: -1.0,
            },
        ];
        let p = PromptBuilder::new(&choices).render(&history);
        let history_lines = p
            .lines()
            .filter(|l| l.trim_start().starts_with(HISTORY_LINE_PREFIX))
            .count();
        assert_eq!(history_lines, 2);
        assert!(p.contains("perf: 0.512300"));
        assert!(p.contains("perf: -1.000000"));
    }

    #[test]
    fn latency_objective_marker() {
        let choices = DesignChoices::nacim_default();
        let p = PromptBuilder::new(&choices)
            .objective(PromptObjective::AccuracyLatency)
            .render(&[]);
        assert!(p.contains("objective: accuracy-latency"));
        assert!(p.contains("1600 FPS"));
    }

    #[test]
    fn naive_objective_strips_codesign_framing() {
        let choices = DesignChoices::nacim_default();
        let p = PromptBuilder::new(&choices)
            .objective(PromptObjective::Naive)
            .render(&[]);
        assert!(!p.contains("neural architecture search"));
        assert!(!p.contains("CIFAR10"));
        assert!(!p.contains("compute-in-memory"));
        assert!(p.contains("objective: generic"));
    }

    #[test]
    fn objective_descriptions_nonempty() {
        for o in [
            PromptObjective::AccuracyEnergy,
            PromptObjective::AccuracyLatency,
            PromptObjective::Naive,
        ] {
            assert!(!o.description().is_empty());
            assert!(o.marker().starts_with("objective:"));
        }
    }
}
