use std::fmt;

/// Error type for prompt rendering, parsing and the simulated LLM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// A response could not be parsed into a design.
    ParseResponse {
        /// What went wrong.
        reason: String,
        /// A snippet of the offending text.
        snippet: String,
    },
    /// A design space description was empty or inconsistent.
    InvalidChoices(String),
    /// A parsed design referenced options outside the design space.
    OutOfSpace(String),
    /// The prompt handed to the model was missing required sections.
    UnintelligiblePrompt(String),
    /// The model endpoint rejected the request for quota reasons.
    ///
    /// Transient: callers should back off and retry (honouring
    /// `retry_after_ms` as a lower bound when non-zero).
    RateLimited {
        /// Endpoint-suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The model call exceeded its latency budget.
    ///
    /// Transient: a retry may land on a faster replica.
    Timeout {
        /// How long the call ran before being abandoned, in milliseconds.
        elapsed_ms: u64,
    },
    /// A circuit breaker is open: the model has failed repeatedly and
    /// callers should degrade to a fallback instead of hammering it.
    ///
    /// Not transient — the breaker itself decides when to probe again.
    CircuitOpen {
        /// Consecutive failures observed when the circuit opened.
        failures: u32,
    },
}

impl LlmError {
    /// Whether a retry of the same request may legitimately succeed.
    ///
    /// Rate limits and timeouts are transient; parse errors, bad prompts
    /// and an open circuit are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            LlmError::RateLimited { .. } | LlmError::Timeout { .. }
        )
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::ParseResponse { reason, snippet } => {
                write!(f, "cannot parse llm response ({reason}) near `{snippet}`")
            }
            LlmError::InvalidChoices(msg) => write!(f, "invalid design choices: {msg}"),
            LlmError::OutOfSpace(msg) => write!(f, "design outside search space: {msg}"),
            LlmError::UnintelligiblePrompt(msg) => write!(f, "unintelligible prompt: {msg}"),
            LlmError::RateLimited { retry_after_ms } => {
                write!(
                    f,
                    "rate limited by model endpoint (retry after {retry_after_ms} ms)"
                )
            }
            LlmError::Timeout { elapsed_ms } => {
                write!(f, "model call timed out after {elapsed_ms} ms")
            }
            LlmError::CircuitOpen { failures } => {
                write!(
                    f,
                    "circuit open after {failures} consecutive model failures"
                )
            }
        }
    }
}

impl std::error::Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = LlmError::ParseResponse {
            reason: "no brackets".into(),
            snippet: "hello".into(),
        };
        assert!(e.to_string().contains("cannot parse"));
        assert!(LlmError::OutOfSpace("k=9".into())
            .to_string()
            .contains("outside"));
        assert!(LlmError::RateLimited { retry_after_ms: 50 }
            .to_string()
            .contains("50 ms"));
        assert!(LlmError::Timeout { elapsed_ms: 900 }
            .to_string()
            .contains("900 ms"));
        assert!(LlmError::CircuitOpen { failures: 5 }
            .to_string()
            .contains("5 consecutive"));
    }

    #[test]
    fn transience_classification() {
        assert!(LlmError::RateLimited { retry_after_ms: 0 }.is_transient());
        assert!(LlmError::Timeout { elapsed_ms: 1 }.is_transient());
        assert!(!LlmError::CircuitOpen { failures: 3 }.is_transient());
        assert!(!LlmError::InvalidChoices("x".into()).is_transient());
        assert!(!LlmError::ParseResponse {
            reason: "r".into(),
            snippet: "s".into()
        }
        .is_transient());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<LlmError>();
    }
}
