use std::fmt;

/// Error type for prompt rendering, parsing and the simulated LLM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// A response could not be parsed into a design.
    ParseResponse {
        /// What went wrong.
        reason: String,
        /// A snippet of the offending text.
        snippet: String,
    },
    /// A design space description was empty or inconsistent.
    InvalidChoices(String),
    /// A parsed design referenced options outside the design space.
    OutOfSpace(String),
    /// The prompt handed to the model was missing required sections.
    UnintelligiblePrompt(String),
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::ParseResponse { reason, snippet } => {
                write!(f, "cannot parse llm response ({reason}) near `{snippet}`")
            }
            LlmError::InvalidChoices(msg) => write!(f, "invalid design choices: {msg}"),
            LlmError::OutOfSpace(msg) => write!(f, "design outside search space: {msg}"),
            LlmError::UnintelligiblePrompt(msg) => write!(f, "unintelligible prompt: {msg}"),
        }
    }
}

impl std::error::Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = LlmError::ParseResponse {
            reason: "no brackets".into(),
            snippet: "hello".into(),
        };
        assert!(e.to_string().contains("cannot parse"));
        assert!(LlmError::OutOfSpace("k=9".into())
            .to_string()
            .contains("outside"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<LlmError>();
    }
}
