#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before merge.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
# Smoke-run the benches (one iteration each) so changes that *break* a
# bench are caught here; real timings come from `cargo bench`. This also
# exercises the BENCH_eval.json writer in eval_pipeline.
cargo bench -p lcda-bench -- --test
