#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before merge.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
# Smoke-run the benches (one iteration each) so changes that *break* a
# bench are caught here; real timings come from `cargo bench`. This also
# exercises the BENCH_eval.json writer in eval_pipeline.
cargo bench -p lcda-bench -- --test

# Journal smoke: a short search must stream a JSONL journal that
# `lcda report` parses back, and identically seeded runs must write
# byte-identical journals (the determinism contract).
journal_dir="$(mktemp -d)"
trap 'rm -rf "$journal_dir"' EXIT
./target/release/lcda search --episodes 3 --seed 7 \
    --journal "$journal_dir/run_a.jsonl" > /dev/null
./target/release/lcda search --episodes 3 --seed 7 \
    --journal "$journal_dir/run_b.jsonl" > /dev/null
cmp "$journal_dir/run_a.jsonl" "$journal_dir/run_b.jsonl"
./target/release/lcda report "$journal_dir/run_a.jsonl" | grep -q "episodes"
