#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before merge.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
# -D warnings also promotes the `clippy::unwrap_used` /
# `clippy::expect_used` gates in lcda-core and lcda-optim (see
# crates/core/src/lib.rs and crates/optim/src/lib.rs) to hard errors:
# production code must surface typed errors, not panic.
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
# Smoke-run the benches (one iteration each) so changes that *break* a
# bench are caught here; real timings come from `cargo bench`. This also
# exercises the BENCH_eval.json writer in eval_pipeline.
cargo bench -p lcda-bench -- --test

# Journal smoke: a short search must stream a JSONL journal that
# `lcda report` parses back, and identically seeded runs must write
# byte-identical journals (the determinism contract).
journal_dir="$(mktemp -d)"
trap 'rm -rf "$journal_dir"' EXIT
./target/release/lcda search --episodes 3 --seed 7 \
    --journal "$journal_dir/run_a.jsonl" > /dev/null
./target/release/lcda search --episodes 3 --seed 7 \
    --journal "$journal_dir/run_b.jsonl" > /dev/null
cmp "$journal_dir/run_a.jsonl" "$journal_dir/run_b.jsonl"
./target/release/lcda report "$journal_dir/run_a.jsonl" | grep -q "episodes"

# Chaos smoke: kill -9 a checkpointed search mid-run, tear the journal
# tail like an interrupted write, and require both the resume and the
# report to come back clean. The kill is racy by design — a fast run may
# finish first, which is also a pass (the resume then just replays).
./target/release/lcda search --episodes 8 --seed 7 --no-cache \
    --checkpoint "$journal_dir/chaos.json" --keep-checkpoints 2 \
    --journal "$journal_dir/chaos.jsonl" > /dev/null &
chaos_pid=$!
sleep 0.2
kill -9 "$chaos_pid" 2> /dev/null || true
wait "$chaos_pid" 2> /dev/null || true
if [ -s "$journal_dir/chaos.jsonl" ]; then
    # Drop the last 5 bytes so the final record is torn mid-line.
    size=$(wc -c < "$journal_dir/chaos.jsonl")
    truncate -s $((size > 5 ? size - 5 : 0)) "$journal_dir/chaos.jsonl"
fi
./target/release/lcda search --episodes 8 --seed 7 --no-cache \
    --checkpoint "$journal_dir/chaos.json" --keep-checkpoints 2 --resume \
    --journal "$journal_dir/chaos.jsonl" > /dev/null
./target/release/lcda report "$journal_dir/chaos.jsonl" | grep -q "episodes"

# Fault-injection smoke: a faulty backend must not change the outcome.
./target/release/lcda search --episodes 4 --seed 9 --json \
    --backend cim+faulty --eval-fault-rate 0.3 > "$journal_dir/faulty.json"
./target/release/lcda search --episodes 4 --seed 9 --json \
    > "$journal_dir/clean.json"
cmp "$journal_dir/faulty.json" "$journal_dir/clean.json"

# Sharded chaos smoke: kill -9 a supervised fleet mid-run, resume it
# from the coordinator manifest, and require the merged Pareto front to
# be byte-identical to an uninterrupted fleet's. As above, the kill is
# racy by design — a fast fleet that finishes first simply replays.
./target/release/lcda search --episodes 8 --seed 11 --shards 4 --json \
    > "$journal_dir/fleet_clean.json"
./target/release/lcda search --episodes 8 --seed 11 --shards 4 --json \
    --checkpoint "$journal_dir/fleet.json" --keep-checkpoints 2 \
    > "$journal_dir/fleet_killed.json" &
fleet_pid=$!
sleep 0.3
kill -9 "$fleet_pid" 2> /dev/null || true
wait "$fleet_pid" 2> /dev/null || true
./target/release/lcda search --episodes 8 --seed 11 --shards 4 --json \
    --checkpoint "$journal_dir/fleet.json" --keep-checkpoints 2 --resume \
    > "$journal_dir/fleet_resumed.json"
cmp "$journal_dir/fleet_clean.json" "$journal_dir/fleet_resumed.json"

# Salvage must be loud: a torn journal fails `lcda report` by default
# and passes only with the explicit escape hatch.
printf '%s' '{"event":"run_sta' > "$journal_dir/torn.jsonl"
if ./target/release/lcda report "$journal_dir/torn.jsonl" > /dev/null 2>&1; then
    echo "ci: report accepted a salvaged journal without --allow-truncated" >&2
    exit 1
fi
./target/release/lcda report "$journal_dir/torn.jsonl" --allow-truncated > /dev/null
