#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before merge.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
