#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before merge.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
# -D warnings also promotes the `clippy::unwrap_used` /
# `clippy::expect_used` gates in lcda-core and lcda-optim (see
# crates/core/src/lib.rs and crates/optim/src/lib.rs) to hard errors:
# production code must surface typed errors, not panic.
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
journal_dir="$(mktemp -d)"
trap 'rm -rf "$journal_dir"' EXIT

# GEMM equivalence smoke: the blocked microkernel must stay bit-identical
# to the scalar reference (unit tests + proptests, all named gemm_*).
cargo test -p lcda-tensor --release -q gemm_

# Smoke-run the benches (one iteration each) so changes that *break* a
# bench are caught here; real timings come from `cargo bench`. This also
# exercises the BENCH_eval.json writer in eval_pipeline, which overwrites
# the committed baseline in place — park the committed copy first.
cp artifacts/BENCH_eval.json "$journal_dir/bench_committed.json"
cargo bench -p lcda-bench -- --test

# Perf-regression gate: the machine-portable *ratio* metrics (Monte-Carlo
# thread and fused-engine speedups, blocked-GEMM speedup, cache-hit
# speedup) must stay within 25% of the committed baseline. Absolute
# nanoseconds are machine-local and not compared.
python3 - "$journal_dir/bench_committed.json" artifacts/BENCH_eval.json << 'PY'
import json, sys
committed = json.load(open(sys.argv[1]))
measured = json.load(open(sys.argv[2]))
failures = []
for group, key in (
    ("mc", "speedup"),
    ("mc", "fused_speedup"),
    ("cache", "speedup"),
    ("gemm", "speedup"),
):
    if key not in committed.get(group, {}):
        continue  # older baselines predate this metric
    want = committed[group][key]
    got = measured[group][key]
    if got < want * 0.75:
        failures.append(
            f"{group}.{key}: measured {got:.2f}x vs committed baseline "
            f"{want:.2f}x (>25% regression)"
        )
for f in failures:
    print(f"ci: bench regression: {f}", file=sys.stderr)
sys.exit(1 if failures else 0)
PY
# Restore the committed baseline: the smoke run's absolute timings are
# machine-local noise and must not churn the tree.
cp "$journal_dir/bench_committed.json" artifacts/BENCH_eval.json

# Journal smoke: a short search must stream a JSONL journal that
# `lcda report` parses back, and identically seeded runs must write
# byte-identical journals (the determinism contract).
./target/release/lcda search --episodes 3 --seed 7 \
    --journal "$journal_dir/run_a.jsonl" > /dev/null
./target/release/lcda search --episodes 3 --seed 7 \
    --journal "$journal_dir/run_b.jsonl" > /dev/null
cmp "$journal_dir/run_a.jsonl" "$journal_dir/run_b.jsonl"
./target/release/lcda report "$journal_dir/run_a.jsonl" | grep -q "episodes"

# Chaos smoke: kill -9 a checkpointed search mid-run, tear the journal
# tail like an interrupted write, and require both the resume and the
# report to come back clean. The kill is racy by design — a fast run may
# finish first, which is also a pass (the resume then just replays).
./target/release/lcda search --episodes 8 --seed 7 --no-cache \
    --checkpoint "$journal_dir/chaos.json" --keep-checkpoints 2 \
    --journal "$journal_dir/chaos.jsonl" > /dev/null &
chaos_pid=$!
sleep 0.2
kill -9 "$chaos_pid" 2> /dev/null || true
wait "$chaos_pid" 2> /dev/null || true
if [ -s "$journal_dir/chaos.jsonl" ]; then
    # Drop the last 5 bytes so the final record is torn mid-line.
    size=$(wc -c < "$journal_dir/chaos.jsonl")
    truncate -s $((size > 5 ? size - 5 : 0)) "$journal_dir/chaos.jsonl"
fi
./target/release/lcda search --episodes 8 --seed 7 --no-cache \
    --checkpoint "$journal_dir/chaos.json" --keep-checkpoints 2 --resume \
    --journal "$journal_dir/chaos.jsonl" > /dev/null
./target/release/lcda report "$journal_dir/chaos.jsonl" | grep -q "episodes"

# Fault-injection smoke: a faulty backend must not change the outcome.
./target/release/lcda search --episodes 4 --seed 9 --json \
    --backend cim+faulty --eval-fault-rate 0.3 > "$journal_dir/faulty.json"
./target/release/lcda search --episodes 4 --seed 9 --json \
    > "$journal_dir/clean.json"
cmp "$journal_dir/faulty.json" "$journal_dir/clean.json"

# Hardware-as-data smoke: a search lowered from the shipped ISAAC
# hierarchy preset must be byte-identical to the default backend's run
# (the preset is golden-equivalent to the builtin).
./target/release/lcda search --episodes 4 --seed 9 --json \
    --backend cim@configs/hw/isaac.json > "$journal_dir/hw_preset.json"
cmp "$journal_dir/hw_preset.json" "$journal_dir/clean.json"

# Sharded chaos smoke: kill -9 a supervised fleet mid-run, resume it
# from the coordinator manifest, and require the merged Pareto front to
# be byte-identical to an uninterrupted fleet's. As above, the kill is
# racy by design — a fast fleet that finishes first simply replays.
./target/release/lcda search --episodes 8 --seed 11 --shards 4 --json \
    > "$journal_dir/fleet_clean.json"
./target/release/lcda search --episodes 8 --seed 11 --shards 4 --json \
    --checkpoint "$journal_dir/fleet.json" --keep-checkpoints 2 \
    > "$journal_dir/fleet_killed.json" &
fleet_pid=$!
sleep 0.3
kill -9 "$fleet_pid" 2> /dev/null || true
wait "$fleet_pid" 2> /dev/null || true
./target/release/lcda search --episodes 8 --seed 11 --shards 4 --json \
    --checkpoint "$journal_dir/fleet.json" --keep-checkpoints 2 --resume \
    > "$journal_dir/fleet_resumed.json"
cmp "$journal_dir/fleet_clean.json" "$journal_dir/fleet_resumed.json"

# Salvage must be loud: a torn journal fails `lcda report` by default
# and passes only with the explicit escape hatch.
printf '%s' '{"event":"run_sta' > "$journal_dir/torn.jsonl"
if ./target/release/lcda report "$journal_dir/torn.jsonl" > /dev/null 2>&1; then
    echo "ci: report accepted a salvaged journal without --allow-truncated" >&2
    exit 1
fi
./target/release/lcda report "$journal_dir/torn.jsonl" --allow-truncated > /dev/null

# Serve smoke: start the job server with one worker (jobs run strictly
# in admission order), submit two identical-seed jobs, and require
#   (a) the second job to report nonzero cross-run hits from the shared
#       cache seeded by the first, and
#   (b) both served results to be byte-identical to the offline
#       `lcda search --json` output for the same seed.
./target/release/lcda serve --addr 127.0.0.1:0 --workers 1 \
    --journal-dir "$journal_dir/serve-journals" > "$journal_dir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*listening on http://##p' "$journal_dir/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "ci: serve never printed its address" >&2; exit 1; }
serve_spec='{"episodes": 3, "seed": 21}'
curl -sf -X POST -d "$serve_spec" "http://$addr/jobs" > /dev/null
curl -sf -X POST -d "$serve_spec" "http://$addr/jobs" > /dev/null
for job in job-1 job-2; do
    state=""
    for _ in $(seq 1 600); do
        state=$(curl -sf "http://$addr/jobs/$job" \
            | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
        [ "$state" = "done" ] && break
        if [ "$state" = "failed" ] || [ "$state" = "cancelled" ]; then
            echo "ci: serve $job landed in state $state" >&2
            exit 1
        fi
        sleep 0.1
    done
    [ "$state" = "done" ] || { echo "ci: serve $job never finished" >&2; exit 1; }
done
cross=$(curl -sf "http://$addr/jobs/job-2" \
    | sed -n 's/.*"cross_run_hits":\([0-9]*\).*/\1/p')
[ -n "$cross" ] && [ "$cross" -gt 0 ] \
    || { echo "ci: job-2 saw no cross-run cache hits (got '$cross')" >&2; exit 1; }
curl -sf "http://$addr/jobs/job-1/result" > "$journal_dir/serve_1.json"
curl -sf "http://$addr/jobs/job-2/result" > "$journal_dir/serve_2.json"
./target/release/lcda search --episodes 3 --seed 21 --json \
    > "$journal_dir/serve_offline.json"
cmp "$journal_dir/serve_1.json" "$journal_dir/serve_offline.json"
cmp "$journal_dir/serve_2.json" "$journal_dir/serve_offline.json"
# Per-job journals exist, are job-isolated, and parse with `lcda report`.
./target/release/lcda report "$journal_dir/serve-journals/job-1.jsonl" \
    | grep -q "serve jobs"
./target/release/lcda report "$journal_dir/serve-journals/job-2.jsonl" \
    | grep -q "shared cache"
curl -sf -X POST "http://$addr/shutdown" > /dev/null
wait "$serve_pid"

# Serve crash smoke: kill -9 the server mid-job, restart it on the same
# --journal-dir, and require the recovered job's result to be
# byte-identical to the uninterrupted offline run. The kill is racy by
# design — a fast job that finishes first is restored terminally from
# the ledger instead of re-run, and must compare equal all the same.
./target/release/lcda serve --addr 127.0.0.1:0 --workers 1 \
    --journal-dir "$journal_dir/serve-crash" > "$journal_dir/serve_crash_a.log" &
crash_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*listening on http://##p' "$journal_dir/serve_crash_a.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "ci: crash-smoke serve never printed its address" >&2; exit 1; }
curl -sf -X POST -d '{"episodes": 3, "seed": 21}' "http://$addr/jobs" > /dev/null
sleep 0.5
kill -9 "$crash_pid" 2> /dev/null || true
wait "$crash_pid" 2> /dev/null || true
# Restart on the crashed ledger — with a one-slot queue for the
# backpressure check below.
./target/release/lcda serve --addr 127.0.0.1:0 --workers 1 \
    --queue-capacity 1 \
    --journal-dir "$journal_dir/serve-crash" > "$journal_dir/serve_crash_b.log" &
crash_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*listening on http://##p' "$journal_dir/serve_crash_b.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "ci: restarted serve never printed its address" >&2; exit 1; }
state=""
for _ in $(seq 1 600); do
    state=$(curl -sf "http://$addr/jobs/job-1" \
        | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$state" = "done" ] && break
    if [ "$state" = "failed" ] || [ "$state" = "cancelled" ]; then
        echo "ci: recovered job-1 landed in state $state" >&2
        exit 1
    fi
    sleep 0.1
done
[ "$state" = "done" ] || { echo "ci: recovered job-1 never finished" >&2; exit 1; }
curl -sf "http://$addr/jobs/job-1/result" > "$journal_dir/serve_recovered.json"
cmp "$journal_dir/serve_recovered.json" "$journal_dir/serve_offline.json"

# Backpressure smoke: with a one-slot queue and one worker, a burst of
# long jobs must hit a typed 429 — not a hang, not a dropped socket.
code=""
for _ in $(seq 1 6); do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        -d '{"episodes": 40, "seed": 99}' "http://$addr/jobs")
    [ "$code" = "429" ] && break
done
[ "$code" = "429" ] || { echo "ci: full queue never returned 429 (last '$code')" >&2; exit 1; }
# Liveness after overload, then drain the long jobs so shutdown does not
# wait out 40 episodes (workers finish their current job at shutdown).
curl -sf "http://$addr/healthz" | grep -q '"status":"ok"'
for job in job-2 job-3 job-4 job-5 job-6 job-7; do
    curl -s -X POST "http://$addr/jobs/$job/cancel" > /dev/null || true
done
for _ in $(seq 1 600); do
    busy=$(curl -sf "http://$addr/healthz" \
        | sed -n 's/.*"jobs_running":\([0-9]*\).*/\1/p')
    [ "$busy" = "0" ] && break
    sleep 0.1
done
curl -sf -X POST "http://$addr/shutdown" > /dev/null
wait "$crash_pid"
