//! The §IV-B experiment: accuracy-vs-latency co-design — the case where
//! LCDA *fails*.
//!
//! GPT-4's pretrained knowledge holds two beliefs that are wrong on CiM
//! hardware ("larger kernels enhance accuracy", "smaller kernels imply
//! lower latency"), and it does not know that crossbar latency is set by
//! ADC mux serialization rather than FLOPs. The simulated LLM carries the
//! same knowledge corner, so — exactly as in the paper's Fig. 4 — the
//! RL baseline finds strictly faster designs, while LCDA's candidates
//! keep high accuracy but never reach low latency. The fine-tuned persona
//! (the paper's future-work fix) closes part of the gap.
//!
//! ```sh
//! cargo run --release --example accuracy_latency_codesign
//! ```

use lcda::prelude::*;

fn min_latency(outcome: &Outcome) -> f64 {
    outcome
        .accuracy_latency_points()
        .iter()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min)
}

fn max_accuracy(outcome: &Outcome) -> f64 {
    outcome
        .accuracy_latency_points()
        .iter()
        .map(|p| p.0)
        .fold(f64::NEG_INFINITY, f64::max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::nacim_cifar10();
    let seed = 1;
    let cfg = |eps: u32| {
        CoDesignConfig::builder(Objective::AccuracyLatency)
            .episodes(eps)
            .seed(seed)
            .build()
    };

    println!("running LCDA pretrained (20 episodes)…");
    let lcda = CoDesign::builder(space.clone(), cfg(20))
        .optimizer(OptimizerSpec::ExpertLlm)
        .build()?
        .run()?;
    println!("running NACIM RL baseline (500 episodes)…");
    let nacim = CoDesign::builder(space.clone(), cfg(500))
        .optimizer(OptimizerSpec::Rl)
        .build()?
        .run()?;
    println!("running LCDA fine-tuned (20 episodes, future-work persona)…");
    let finetuned = CoDesign::builder(space, cfg(20))
        .optimizer(OptimizerSpec::FinetunedLlm)
        .build()?
        .run()?;

    println!("\nLCDA candidates (accuracy, latency ns):");
    for (acc, lat) in lcda.accuracy_latency_points() {
        println!("  {acc:.3}  {lat:.0}");
    }

    println!("\nsummary:");
    println!(
        "  {:12} best reward {:+.3}   min latency {:>9.0} ns   max accuracy {:.3}",
        "LCDA",
        lcda.best.reward,
        min_latency(&lcda),
        max_accuracy(&lcda)
    );
    println!(
        "  {:12} best reward {:+.3}   min latency {:>9.0} ns   max accuracy {:.3}",
        "NACIM",
        nacim.best.reward,
        min_latency(&nacim),
        max_accuracy(&nacim)
    );
    println!(
        "  {:12} best reward {:+.3}   min latency {:>9.0} ns   max accuracy {:.3}",
        "fine-tuned",
        finetuned.best.reward,
        min_latency(&finetuned),
        max_accuracy(&finetuned)
    );

    println!(
        "\nAs in the paper: on this objective LCDA falls short — NACIM reaches \
         {:.1}x lower latency — while LCDA retains the accuracy edge ({:.3} vs {:.3}); \
         the misconception-corrected persona improves the latency reward from {:+.3} to {:+.3}.",
        min_latency(&lcda) / min_latency(&nacim),
        max_accuracy(&lcda),
        max_accuracy(&nacim),
        lcda.best.reward,
        finetuned.best.reward,
    );
    Ok(())
}
