//! Reliability engineering on the real training/evaluation path: measure
//! what noise-injection training (§III-C), data augmentation and
//! write-verify programming (SWIM, the paper's reference \[5\]) each do to
//! Monte-Carlo accuracy under a severe RRAM corner — and how fast
//! retention drift erodes a BatchNorm network. The point is measurement,
//! not advocacy: at this tiny scale (96 samples, 8×8 images, accuracy
//! measured on the training set) the training-time regularizers trade
//! raw fit for robustness, while the programming-time fix is a clean win.
//!
//! ```sh
//! cargo run --release --example reliability_study
//! ```

use lcda::dnn::arch::Architecture;
use lcda::dnn::dataset::{Augmentation, SynthCifar};
use lcda::dnn::mc_eval::{mc_accuracy, McEvalConfig};
use lcda::dnn::trainer::{TrainConfig, Trainer};
use lcda::variation::{RetentionConfig, VariationConfig, WriteVerifyConfig};

fn train(
    data: &SynthCifar,
    noise_injection: Option<VariationConfig>,
    augment: bool,
) -> Result<lcda::dnn::network::Network, Box<dyn std::error::Error>> {
    let net = Architecture::tiny_test().with_batch_norm().build(99)?;
    let mut cfg = TrainConfig::fast_test();
    cfg.epochs = 12;
    if let Some(corner) = noise_injection {
        cfg = cfg.with_noise_injection(corner);
    }
    if augment {
        cfg = cfg.with_augmentation(Augmentation::standard());
    }
    let mut trainer = Trainer::new(net, cfg);
    trainer.fit(data)?;
    Ok(trainer.into_network())
}

fn mc(
    net: &mut lcda::dnn::network::Network,
    data: &SynthCifar,
    variation: VariationConfig,
    elapsed_seconds: f64,
) -> Result<f64, Box<dyn std::error::Error>> {
    Ok(f64::from(
        mc_accuracy(
            net,
            data,
            &McEvalConfig {
                trials: 8,
                variation,
                seed: 13,
                elapsed_seconds,
                threads: 1,
            },
        )?
        .mean,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SynthCifar::generate_classes(96, 8, 4, 61)?;
    let corner = VariationConfig::rram_severe();

    println!("training four variants of the same tiny network (severe RRAM corner)…\n");
    let mut plain = train(&data, None, false)?;
    let mut ni = train(&data, Some(corner.clone()), false)?;
    let mut ni_aug = train(&data, Some(corner.clone()), true)?;
    let mut ni_all = train(&data, Some(corner.clone()), true)?;

    let wv = corner
        .clone()
        .with_write_verify(WriteVerifyConfig::standard());
    println!("{:<42} {:>9}", "configuration", "mc-acc");
    println!(
        "{:<42} {:>9.3}",
        "plain training",
        mc(&mut plain, &data, corner.clone(), 0.0)?
    );
    println!(
        "{:<42} {:>9.3}",
        "+ noise-injection training (§III-C)",
        mc(&mut ni, &data, corner.clone(), 0.0)?
    );
    println!(
        "{:<42} {:>9.3}",
        "+ augmentation (flips/shifts)",
        mc(&mut ni_aug, &data, corner.clone(), 0.0)?
    );
    println!(
        "{:<42} {:>9.3}",
        "+ write-verify programming (SWIM)",
        mc(&mut ni_all, &data, wv.clone(), 0.0)?
    );

    println!("\nretention on the best variant (write-verify, PCM-like drift):");
    let drifting = wv.with_retention(RetentionConfig::pcm_like());
    for (label, secs) in [
        ("fresh", 0.0),
        ("1 day", 86_400.0),
        ("1 month", 86_400.0 * 30.0),
        ("1 year", 86_400.0 * 365.0),
    ] {
        println!(
            "  {label:<9} {:>9.3}",
            mc(&mut ni_all, &data, drifting.clone(), secs)?
        );
    }
    println!(
        "\nReadings: write-verify is a clean win (tighter conductances, no \
         training cost). Noise-injection and augmentation are regularizers — on a \
         96-sample task they give up training-set fit, which is what this table \
         measures; their payoff is robustness at realistic data scales. The \
         retention collapse is sharp because BatchNorm's running statistics go \
         stale as every conductance drifts — a real deployment would re-calibrate \
         BN or refresh the arrays."
    );
    Ok(())
}
