//! The §IV-C ablation (Fig. 5): what happens when the LLM is *not told*
//! it is doing SW/HW co-design.
//!
//! LCDA-naive strips the co-design framing from the prompt (the model
//! just sees "suggest a parameter vector that maximizes a score") and the
//! model brings no domain knowledge — so it wanders through non-monotone
//! channel profiles and degenerate kernels, and never finds efficient
//! designs. Prior knowledge, not the LLM machinery itself, is what beats
//! the cold start.
//!
//! ```sh
//! cargo run --release --example ablation_naive
//! ```

use lcda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::nacim_cifar10();
    let cfg = CoDesignConfig::builder(Objective::AccuracyEnergy)
        .episodes(20)
        .seed(3)
        .build();

    println!("running LCDA (expert prompt + knowledge)…");
    let expert = CoDesign::builder(space.clone(), cfg)
        .optimizer(OptimizerSpec::ExpertLlm)
        .build()?
        .run()?;
    println!("running LCDA-naive (no co-design framing)…");
    let naive = CoDesign::builder(space, cfg)
        .optimizer(OptimizerSpec::NaiveLlm)
        .build()?
        .run()?;

    println!("\n         {:>8}  {:>8}", "LCDA", "naive");
    println!(
        "best     {:>+8.3}  {:>+8.3}",
        expert.best.reward, naive.best.reward
    );
    let mean =
        |o: &Outcome| o.history.iter().map(|r| r.reward).sum::<f64>() / o.history.len() as f64;
    println!("mean     {:>+8.3}  {:>+8.3}", mean(&expert), mean(&naive));
    let mean_acc = |o: &Outcome| {
        let pts = o.accuracy_energy_points();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().map(|p| p.0).sum::<f64>() / pts.len() as f64
        }
    };
    println!(
        "mean acc {:>8.3}  {:>8.3}",
        mean_acc(&expert),
        mean_acc(&naive)
    );

    println!("\nnaive candidates (accuracy, energy pJ):");
    for (acc, e) in naive.accuracy_energy_points() {
        println!("  {acc:.3}  {e:.3e}");
    }
    println!(
        "\nWithout knowing it is performing co-design, the naive run fails to \
         provide efficient designs (best {:+.3} vs LCDA's {:+.3}) — prior \
         knowledge is what bypasses the cold start.",
        naive.best.reward, expert.best.reward
    );
    Ok(())
}
