//! Explainable NAS — the paper's first future-work direction.
//!
//! "The changes in design parameters between consecutive episodes are
//! human-readable, allowing users to request explanations by sending
//! prompts to LLMs." This example drives the LLM optimizer manually so it
//! can print, for every episode, the design delta *and the model's own
//! rationale*, plus the full prompt/response transcript statistics.
//!
//! ```sh
//! cargo run --release --example explainable_nas
//! ```

use lcda::llm::persona::Persona;
use lcda::llm::prompt::PromptObjective;
use lcda::llm::sim::SimLlm;
use lcda::optim::llm_opt::LlmOptimizer;
use lcda::optim::Optimizer;
use lcda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::nacim_cifar10();
    let config = CoDesignConfig::builder(Objective::AccuracyEnergy)
        .episodes(1)
        .seed(11)
        .build();
    // Borrow LCDA's evaluators through a scorer run; we drive the
    // optimizer by hand to read its rationales.
    let mut scorer = CoDesign::builder(space.clone(), config)
        .optimizer(OptimizerSpec::Random)
        .build()?;

    let llm = SimLlm::new(Persona::Pretrained, 11);
    let mut opt = LlmOptimizer::new(llm, space.choices.clone(), PromptObjective::AccuracyEnergy);

    println!("knowledge base of the optimizer:");
    for rule in Persona::Pretrained.knowledge().rules() {
        let tag = if rule.correct { "  " } else { "✗ " };
        println!("  {tag}{}: {}", rule.name, rule.statement);
    }
    println!("  (✗ = belief the paper found to be wrong on CiM hardware)\n");

    for episode in 0..10u32 {
        let design = opt.propose()?;
        let record = scorer.evaluate_design(episode, design)?;
        opt.observe(&record.design, record.reward)?;
        println!("episode {episode}: reward {:+.3}", record.reward);
        println!("  design    {}", record.design);
        if let Some(why) = opt.model().last_rationale() {
            println!("  rationale {why}");
        }
    }

    let t = opt.transcript();
    println!(
        "\ntranscript: {} exchanges with {}, ≈{} prompt tokens total",
        t.len(),
        t.model(),
        t.approx_prompt_tokens()
    );
    let last = t.exchanges().last().expect("episodes ran");
    println!(
        "\nfinal raw model response:\n  {}",
        last.response.replace('\n', "\n  ")
    );
    Ok(())
}
