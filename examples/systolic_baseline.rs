//! Cross-architecture baseline: the same 20-episode LCDA search scored by
//! the two in-tree hardware backends.
//!
//! The optimizer stream is identical in both runs (same persona, same
//! seed, same prompts), so every difference in the table below is the
//! hardware model talking: the compute-in-memory macro model (`cim`, the
//! paper's platform) versus the digital systolic-array analytic model
//! (`systolic`, an Eyeriss/TPU-style weight-stationary array).
//!
//! ```sh
//! cargo run --release --example systolic_baseline
//! ```

use lcda::prelude::*;

fn search(backend: &str) -> Result<Outcome, Box<dyn std::error::Error>> {
    let space = DesignSpace::nacim_cifar10();
    let config = CoDesignConfig::builder(Objective::AccuracyEnergy)
        .episodes(20)
        .seed(42)
        .build();
    let mut run = CoDesign::builder(space, config)
        .optimizer(OptimizerSpec::ExpertLlm)
        .backend(backend)
        .build()?;
    Ok(run.run()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = BackendRegistry::standard();
    println!(
        "registered hardware backends: {}\n",
        registry.names().join(", ")
    );

    let cim = search("cim")?;
    let sys = search("systolic")?;

    println!(
        "episode  design                                   cim energy(pJ)  systolic energy(pJ)"
    );
    for (a, b) in cim.history.iter().zip(&sys.history) {
        assert_eq!(a.design, b.design, "optimizer streams must be identical");
        let fmt = |r: &EpisodeRecord| match &r.hw {
            Some(hw) => format!("{:>14.3e}", hw.energy_pj),
            None => format!("{:>14}", "over budget"),
        };
        println!(
            "{:>7}  {:40} {}  {}",
            a.episode,
            a.design.to_string(),
            fmt(a),
            fmt(b)
        );
    }

    for (name, outcome) in [("cim", &cim), ("systolic", &sys)] {
        println!("\nbest under {name}: {}", outcome.best.design);
        println!("  reward   {:+.3}", outcome.best.reward);
        if let Some(hw) = &outcome.best.hw {
            println!("  energy   {:.3e} pJ", hw.energy_pj);
            match hw.fps() {
                Some(fps) => println!("  latency  {:.0} ns ({fps:.0} FPS)", hw.latency_ns),
                None => println!("  latency  {:.0} ns", hw.latency_ns),
            }
            println!("  area     {:.2} mm²", hw.area_mm2);
        }
    }

    if cim.best.design != sys.best.design {
        println!("\nthe two cost models steer the search to different winners —");
        println!("hardware/software co-design is platform-specific, as §IV argues.");
    }
    Ok(())
}
