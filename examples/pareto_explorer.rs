//! Search the accuracy-energy Pareto front *directly* with NSGA-II
//! (NSGA-Net style, the paper's reference [14]) instead of scalarizing
//! the trade-off, and compare the evolved front against the fronts the
//! scalarized LCDA and NACIM searches leave behind.
//!
//! ```sh
//! cargo run --release --example pareto_explorer
//! ```

use lcda::core::mo::MultiObjectiveCoDesign;
use lcda::core::pareto::{hypervolume, pareto_front, TradeoffPoint};
use lcda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::nacim_cifar10();
    let seed = 4;

    println!("running NSGA-II (240 evaluations, objective vector = accuracy, −energy)…");
    let mut nsga =
        MultiObjectiveCoDesign::new(space.clone(), Objective::AccuracyEnergy, 240, seed)?;
    let mo = nsga.run()?;

    println!("running scalarized LCDA (20 episodes) and NACIM (500 episodes) for comparison…");
    let lcda = CoDesign::builder(
        space.clone(),
        CoDesignConfig::builder(Objective::AccuracyEnergy)
            .episodes(20)
            .seed(seed)
            .build(),
    )
    .optimizer(OptimizerSpec::ExpertLlm)
    .build()?
    .run()?;
    let nacim = CoDesign::builder(
        space,
        CoDesignConfig::builder(Objective::AccuracyEnergy)
            .episodes(500)
            .seed(seed)
            .build(),
    )
    .optimizer(OptimizerSpec::Rl)
    .build()?
    .run()?;

    println!("\nNSGA-II front ({} designs):", mo.front.len());
    let mut front = mo.front.clone();
    front.sort_by(|a, b| a.2.total_cmp(&b.2));
    for (d, acc, cost) in &front {
        println!("  acc {acc:.3} @ {cost:.3e} pJ   {d}");
    }

    let as_points = |pts: Vec<(f64, f64)>| -> Vec<TradeoffPoint> {
        pts.into_iter()
            .map(|(a, c)| TradeoffPoint::new(a, c))
            .collect()
    };
    let hv = |pts: &[TradeoffPoint]| hypervolume(&pareto_front(pts), 0.0, 8.0e7);
    let nsga_pts: Vec<TradeoffPoint> = front
        .iter()
        .map(|(_, a, c)| TradeoffPoint::new(*a, *c))
        .collect();
    let hv_nsga = hv(&nsga_pts);
    let hv_lcda = hv(&as_points(lcda.accuracy_energy_points()));
    let hv_nacim = hv(&as_points(nacim.accuracy_energy_points()));

    println!("\nhypervolume (bigger = better front, ref acc 0 / cost 8e7 pJ):");
    println!("  NSGA-II @240   {hv_nsga:.3e}");
    println!("  LCDA    @20    {hv_lcda:.3e}");
    println!("  NACIM   @500   {hv_nacim:.3e}");
    println!(
        "\nThe evolutionary front search needs {}x LCDA's evaluation budget to build \
         its front — the cold-start cost the paper's LLM knowledge avoids — while the \
         scalarized searches only keep what their single reward asked for.",
        240 / 20
    );
    Ok(())
}
