//! Quickstart: run one LCDA co-design search and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lcda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The NACIM CIFAR-10 search problem from the paper: six convolution
    // layers × (channels, kernel), plus crossbar size / ADC resolution /
    // cell precision / device technology.
    let space = DesignSpace::nacim_cifar10();
    println!(
        "design space: {} candidate designs",
        space.choices.space_size()
    );

    // LCDA explores just 20 episodes (the paper's headline budget).
    let config = CoDesignConfig::builder(Objective::AccuracyEnergy)
        .episodes(20)
        .seed(42)
        .build();
    let mut run = CoDesign::builder(space, config)
        .optimizer(OptimizerSpec::ExpertLlm)
        .build()?;
    let outcome = run.run()?;

    println!("\nepisode  reward    accuracy  energy(pJ)     design");
    for r in &outcome.history {
        match &r.hw {
            Some(hw) => println!(
                "{:>7}  {:>+7.3}   {:>6.3}    {:>10.3e}  {}",
                r.episode, r.reward, r.accuracy, hw.energy_pj, r.design
            ),
            None => println!(
                "{:>7}  {:>+7.3}   (invalid hardware: over area budget)",
                r.episode, r.reward
            ),
        }
    }

    println!("\nbest design after 20 episodes:");
    println!("  {}", outcome.best.design);
    println!("  reward   {:+.3}", outcome.best.reward);
    println!("  accuracy {:.3}", outcome.best.accuracy);
    if let Some(hw) = &outcome.best.hw {
        println!(
            "  energy   {:.3e} pJ (ISAAC reference: 8e7 pJ)",
            hw.energy_pj
        );
        match hw.fps() {
            Some(fps) => println!("  latency  {:.0} ns ({fps:.0} FPS)", hw.latency_ns),
            None => println!("  latency  {:.0} ns (FPS undefined)", hw.latency_ns),
        }
        println!("  area     {:.2} mm²", hw.area_mm2);
    }
    Ok(())
}
