//! The §IV-A experiment: accuracy-vs-energy co-design, LCDA (20 episodes)
//! against the NACIM reinforcement-learning baseline (500 episodes).
//!
//! Reproduces the *shape* of Figs. 2–3: comparable Pareto fronts, with
//! LCDA's candidates keeping high accuracy across the energy range while
//! NACIM's converge to low-energy / lower-accuracy designs — in 1/25th of
//! the episodes.
//!
//! ```sh
//! cargo run --release --example accuracy_energy_codesign
//! ```

use lcda::core::analysis::{speedup, RewardCurve};
use lcda::core::pareto::{hypervolume, pareto_front, TradeoffPoint};
use lcda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = DesignSpace::nacim_cifar10();
    let seed = 1;

    let lcda_cfg = CoDesignConfig::builder(Objective::AccuracyEnergy)
        .episodes(20)
        .seed(seed)
        .build();
    let nacim_cfg = CoDesignConfig::builder(Objective::AccuracyEnergy)
        .episodes(500)
        .seed(seed)
        .build();

    println!("running LCDA (20 episodes)…");
    let lcda = CoDesign::builder(space.clone(), lcda_cfg)
        .optimizer(OptimizerSpec::ExpertLlm)
        .build()?
        .run()?;
    println!("running NACIM RL baseline (500 episodes)…");
    let nacim = CoDesign::builder(space, nacim_cfg)
        .optimizer(OptimizerSpec::Rl)
        .build()?
        .run()?;

    // --- Fig. 2: the scatter --------------------------------------------
    println!("\nLCDA candidates (accuracy, energy pJ):");
    for (acc, e) in lcda.accuracy_energy_points() {
        println!("  {acc:.3}  {e:.3e}");
    }
    let to_points = |pts: &[(f64, f64)]| -> Vec<TradeoffPoint> {
        pts.iter().map(|&(a, c)| TradeoffPoint::new(a, c)).collect()
    };
    let lcda_front = pareto_front(&to_points(&lcda.accuracy_energy_points()));
    let nacim_front = pareto_front(&to_points(&nacim.accuracy_energy_points()));
    println!("\nPareto fronts (accuracy @ energy):");
    println!("  LCDA  ({} points):", lcda_front.len());
    for p in &lcda_front {
        println!("    {:.3} @ {:.3e} pJ", p.accuracy, p.cost);
    }
    println!("  NACIM ({} points):", nacim_front.len());
    for p in &nacim_front {
        println!("    {:.3} @ {:.3e} pJ", p.accuracy, p.cost);
    }
    let hv = |front: &[TradeoffPoint]| hypervolume(front, 0.0, 8.0e7);
    println!(
        "  hypervolume: LCDA {:.3e} vs NACIM {:.3e} (similar fronts expected)",
        hv(&lcda_front),
        hv(&nacim_front)
    );

    // --- §IV-A headline: the speedup ------------------------------------
    let lc = RewardCurve::from_outcome(&lcda);
    let nc = RewardCurve::from_outcome(&nacim);
    let report = speedup(&lc, &nc, 0.02);
    println!(
        "\nbest reward: LCDA {:+.3} in {} episodes; NACIM {:+.3} in 500",
        lc.final_best(),
        report.fast_episodes,
        nc.final_best()
    );
    match report.baseline_episodes {
        Some(n) => println!(
            "NACIM needed {n} episodes to reach LCDA's quality → speedup ≈ {:.0}x (paper: 25x)",
            report.speedup_lower_bound
        ),
        None => println!(
            "NACIM never reached LCDA's quality in 500 episodes → speedup ≥ {:.0}x (paper: 25x)",
            report.speedup_lower_bound
        ),
    }
    Ok(())
}
