//! Swap the fast surrogate accuracy model for the *trained* evaluator:
//! real CNNs, noise-injection training (§III-C), and Monte-Carlo accuracy
//! under device variation — on the synthetic dataset, over a scaled-down
//! design space so the run finishes in seconds.
//!
//! ```sh
//! cargo run --release --example trained_evaluator
//! ```

use lcda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The tiny space: 2 conv layers on 8×8 synthetic images, 4 classes.
    let space = DesignSpace::tiny_test();
    let config = CoDesignConfig::builder(Objective::AccuracyEnergy)
        .episodes(6)
        .seed(5)
        .build();

    let trained = TrainedEvaluator::new(
        space.clone(),
        TrainedEvalConfig {
            train_samples: 128,
            test_samples: 48,
            epochs: 8,
            mc_trials: 6,
            seed: 5,
            threads: 2, // Monte-Carlo trials fan out; results stay bit-identical
        },
    )?;

    println!("co-designing with REAL training per candidate (noise-injection + MC eval)…\n");
    let mut run = CoDesign::builder(space, config)
        .optimizer(OptimizerSpec::ExpertLlm)
        .accuracy_evaluator(Box::new(trained))
        .build()?;
    let outcome = run.run()?;

    println!("episode  reward    mc-accuracy  design");
    for r in &outcome.history {
        println!(
            "{:>7}  {:>+7.3}   {:>6.3}       {}",
            r.episode, r.reward, r.accuracy, r.design
        );
    }
    println!(
        "\nbest: {} (reward {:+.3})",
        outcome.best.design, outcome.best.reward
    );
    println!(
        "\nEvery candidate above was actually trained with weights perturbed the \
         way crossbar programming perturbs them, then evaluated across Monte-Carlo \
         chip instances — the paper's §III-C evaluator, end to end."
    );
    Ok(())
}
